//! `mascotd`'s server core: a single-threaded, readiness-driven event loop
//! multiplexing every connection over level-triggered `epoll`
//! ([`crate::poll`]), dispatching into the shard pool.
//!
//! One thread owns the listener and all connections. Each readable event
//! pulls at most [`READ_CHUNK`] bytes into the connection's
//! [`RecvBuf`], parses every complete frame it holds, and scatters the
//! batch over the owning shards; sub-replies come back on an unbounded
//! channel paired with an `eventfd` waker, are reassembled in a gather
//! slab, and are written out strictly in request order (pipelining:
//! clients may have many requests in flight per connection). Partial
//! reads and writes resume where they stopped — the state machine per
//! connection is exactly `reading frames ⇄ writing responses`, both sides
//! restartable at any byte boundary (DESIGN.md §11).
//!
//! Fairness is the level-triggered contract: a connection with more
//! buffered input than one chunk is simply re-reported by the kernel on
//! the next `epoll_wait`, behind every other ready fd, so a hot
//! connection cannot starve thousands of idle ones.
//!
//! Backpressure is layered:
//! * per request, all-or-nothing `Busy` when any owning shard's bounded
//!   queue is full (replies already scattered are discarded via the gather
//!   slab's discard mode — never delivered to the wrong request);
//! * per connection, reading pauses when the send buffer or the in-flight
//!   response count crosses [`crate::conn`]'s thresholds, and resumes at
//!   half (hysteresis), so a client that never reads its responses stops
//!   being served instead of ballooning server memory.
//!
//! Shutdown drains: the `Shutdown` response is flushed, the listener is
//! deregistered, idle connections close immediately, and connections with
//! responses still owed get [`DRAIN_GRACE`] to take delivery.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_snapshot::SnapshotFile;

use crate::conn::{Conn, Inflight, READ_CHUNK};
use crate::metrics::ShardMetrics;
use crate::poll::{Event, Poller, Waker};
use crate::shard::{shard_of, ReplySink, ShardJob, ShardPool, ShardPoolConfig, ShardReply};
use crate::wire::{
    PredictItem, PredictReply, Request, Response, StatsReport, TrainItem, MAX_BATCH,
    MAX_SNAPSHOT_FRAME_PAYLOAD,
};

/// Token of the listening socket in the poller.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token of the completion waker in the poller.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Bits of a reply tag reserved for the sub-batch's shard index; the rest
/// is the gather slot.
const TAG_SHARD_BITS: u32 = 16;
/// How long connections still owed responses get to take delivery after a
/// `Shutdown`, before being force-closed.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Poll tick while draining, so the grace deadline is observed.
const DRAIN_TICK_MS: i32 = 50;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Predictor built on every shard.
    pub kind: PredictorKind,
    /// Shard pool sizing.
    pub pool: ShardPoolConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            kind: PredictorKind::Mascot,
            pool: ShardPoolConfig::default(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    pool: ShardPool,
    kind: PredictorKind,
    addr: SocketAddr,
    on_ready: Option<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shards", &self.pool.num_shards())
            .finish()
    }
}

impl Server {
    /// Binds the listener and spawns the shard pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        Self::bind_with(cfg, None)
    }

    /// Binds the listener and spawns the shard pool, seeding each shard
    /// with a pre-built predictor (snapshot warm start) when `predictors`
    /// is given. The pool's shard count follows `predictors.len()` in that
    /// case, overriding `cfg.pool.shards`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        cfg: &ServeConfig,
        predictors: Option<Vec<AnyPredictor>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = match predictors {
            Some(p) => ShardPool::with_predictors(p, &cfg.pool),
            None => ShardPool::new(cfg.kind, &cfg.pool),
        };
        assert!(
            pool.num_shards() < (1 << TAG_SHARD_BITS),
            "shard index must fit the reply-tag field"
        );
        Ok(Server {
            listener,
            pool,
            kind: cfg.kind,
            addr,
            on_ready: None,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the shard pool (replay warm-up runs before `run`).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Registers a callback invoked once the listener is registered with
    /// the poller — the earliest point at which the server is actually
    /// accepting under load. `mascotd --port-file` writes its readiness
    /// file here, not before.
    pub fn set_on_ready(&mut self, f: Box<dyn FnOnce() + Send>) {
        self.on_ready = Some(f);
    }

    /// Serves until a `Shutdown` request, then drains every shard and
    /// returns the final statistics.
    pub fn run(self) -> StatsReport {
        self.run_collecting(false).0
    }

    /// Like [`Server::run`], but when `collect_snapshot` is set it also
    /// serializes every shard's final predictor state after the last
    /// connection drains and before the workers exit — the shutdown-path
    /// checkpoint `mascotd --snapshot-dir` persists.
    pub fn run_collecting(self, collect_snapshot: bool) -> (StatsReport, Vec<Vec<u8>>) {
        let Server {
            listener,
            pool,
            kind,
            addr: _,
            on_ready,
        } = self;
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut el = EventLoop::new(listener, &pool, kind).expect("event loop setup");
        if let Some(ready) = on_ready {
            ready();
        }
        el.run();
        // The loop holds sender clones; they must go before `shutdown`, or
        // the workers never observe disconnect and the join blocks forever.
        drop(el);
        // No connections remain, so no new work can arrive; a snapshot
        // taken now is the final state. The pool's own senders are still
        // alive, so the workers are still draining and reachable.
        let payloads = if collect_snapshot {
            pool.snapshot_shards()
        } else {
            Vec::new()
        };
        (pool.shutdown(), payloads)
    }

    /// Runs the server on a background thread; returns the bound address
    /// and the handle yielding the final statistics.
    pub fn spawn(self) -> (SocketAddr, JoinHandle<StatsReport>) {
        let addr = self.local_addr();
        let handle = std::thread::Builder::new()
            .name("mascotd-loop".to_string())
            .spawn(move || self.run())
            .expect("spawn server");
        (addr, handle)
    }
}

/// One scatter/gather in flight: sub-replies land here until `remaining`
/// hits zero, then the encoded response parks in `result` until the
/// connection's response pipeline reaches it.
///
/// A slot is freed only at `remaining == 0` — never early — so a late
/// sub-reply can never alias a recycled slot. `discard` (set when the
/// request was answered `Busy` mid-scatter, or the connection died)
/// swallows the completed gather instead of encoding it.
struct Gather {
    conn: usize,
    kind: GatherKind,
    remaining: u32,
    discard: bool,
    result: Option<Vec<u8>>,
}

enum GatherKind {
    Predict {
        /// Replies slotted back into request order.
        out: Vec<Option<PredictReply>>,
        /// Request indices per shard (the scatter layout).
        subs: Vec<Vec<usize>>,
    },
    Train {
        applied: u32,
        stale: u32,
    },
}

/// The event loop: owns the poller, the connection and gather slabs, and
/// clones of the pool's queue senders.
struct EventLoop {
    poller: Poller,
    waker: Arc<Waker>,
    reply_sink: ReplySink,
    reply_rx: Receiver<(u64, ShardReply)>,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free_conns: Vec<usize>,
    /// Slots closed during the current poll batch; recycled only after the
    /// batch, so a stale event can't hit a freshly accepted connection.
    dead: Vec<usize>,
    gathers: Vec<Option<Gather>>,
    free_gathers: Vec<usize>,
    senders: Vec<SyncSender<ShardJob>>,
    metrics: Vec<Arc<ShardMetrics>>,
    kind: PredictorKind,
    accepting: bool,
    draining: bool,
    deadline: Option<Instant>,
}

impl EventLoop {
    fn new(listener: TcpListener, pool: &ShardPool, kind: PredictorKind) -> io::Result<Self> {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(waker.fd(), TOKEN_WAKER, true, false)?;
        let (tx, reply_rx) = channel();
        Ok(Self {
            poller,
            reply_sink: ReplySink::with_waker(tx, Arc::clone(&waker)),
            waker,
            reply_rx,
            listener,
            conns: Vec::new(),
            free_conns: Vec::new(),
            dead: Vec::new(),
            gathers: Vec::new(),
            free_gathers: Vec::new(),
            senders: pool.senders().to_vec(),
            metrics: pool.metrics().iter().map(Arc::clone).collect(),
            kind,
            accepting: true,
            draining: false,
            deadline: None,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if self.draining { DRAIN_TICK_MS } else { -1 };
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => {
                        if self.accepting {
                            self.accept_all();
                        }
                    }
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let idx = token as usize;
                        if idx >= self.conns.len() || self.conns[idx].is_none() {
                            continue; // closed earlier in this batch
                        }
                        if ev.hangup {
                            self.close_conn(idx);
                            continue;
                        }
                        if ev.readable {
                            self.handle_readable(idx);
                        }
                        if ev.writable {
                            self.service_conn(idx);
                        }
                    }
                }
            }
            self.drain_replies();
            self.free_conns.append(&mut self.dead);
            if self.draining {
                if self.conns.iter().all(Option::is_none) {
                    break;
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    for idx in 0..self.conns.len() {
                        if self.conns[idx].is_some() {
                            self.close_conn(idx);
                        }
                    }
                    break;
                }
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = match self.free_conns.pop() {
                        Some(i) => {
                            self.conns[i] = Some(Conn::new(stream));
                            i
                        }
                        None => {
                            self.conns.push(Some(Conn::new(stream)));
                            self.conns.len() - 1
                        }
                    };
                    let fd = self.conns[idx].as_ref().expect("just stored").stream.as_raw_fd();
                    if self.poller.add(fd, idx as u64, true, false).is_err() {
                        self.conns[idx] = None;
                        self.free_conns.push(idx);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient (ECONNABORTED) and resource (EMFILE) errors
                // alike: stop for this readiness event rather than spin;
                // level-triggered epoll re-reports a non-empty backlog.
                Err(_) => break,
            }
        }
    }

    /// One bounded read, then parse everything complete.
    fn handle_readable(&mut self, idx: usize) {
        {
            let Some(c) = self.conns[idx].as_mut() else { return };
            if !c.reading || c.eof || c.poisoned {
                return; // stale event for a paused/finished reader
            }
            match c.rd.fill(&mut c.stream, READ_CHUNK) {
                Ok(0) => c.eof = true,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.parse_buffered(idx);
        self.service_conn(idx);
    }

    /// Parses and dispatches every complete frame in the receive buffer,
    /// stopping at backpressure, poison, or drain.
    fn parse_buffered(&mut self, idx: usize) {
        loop {
            let Some(c) = self.conns[idx].as_mut() else { return };
            if c.poisoned || self.draining {
                return;
            }
            if c.should_pause() {
                c.reading = false;
                return;
            }
            let (code, len) = match c.rd.peek_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(e) => {
                    // Framing is unrecoverable mid-stream: report, then
                    // stop parsing and close once the report is delivered.
                    c.poisoned = true;
                    let msg = e.to_string();
                    self.push_done(idx, Response::Error(msg));
                    return;
                }
            };
            let decoded = Request::decode(code, c.rd.payload(len));
            c.rd.consume_frame(len);
            match decoded {
                Ok(req) => self.dispatch(idx, req),
                // A well-framed but malformed payload: the stream is still
                // in sync, so answer and keep serving.
                Err(e) => self.push_done(idx, Response::Error(e.to_string())),
            }
        }
    }

    fn dispatch(&mut self, idx: usize, req: Request) {
        match req {
            Request::Predict(items) => self.scatter_predict(idx, items),
            Request::Train(items) => self.scatter_train(idx, items),
            Request::Stats => {
                let report = StatsReport {
                    shards: self.metrics.iter().map(|m| m.snapshot()).collect(),
                };
                self.push_done(idx, Response::Stats(report));
            }
            Request::Shutdown => {
                let served = self
                    .metrics
                    .iter()
                    .map(|m| m.requests.load(Ordering::Relaxed))
                    .sum();
                self.push_done(idx, Response::Shutdown { served });
                if !self.draining {
                    self.begin_drain();
                }
            }
            Request::Snapshot => {
                let resp = snapshot_response(&self.senders, &self.metrics, self.kind);
                self.push_done(idx, resp);
            }
            Request::Restore(bytes) => {
                let resp = restore_response(&bytes, &self.senders, &self.metrics, self.kind);
                self.push_done(idx, resp);
            }
        }
    }

    fn scatter_predict(&mut self, idx: usize, items: Vec<PredictItem>) {
        if items.len() > MAX_BATCH {
            self.push_done(idx, Response::Error("batch exceeds MAX_BATCH".to_string()));
            return;
        }
        let shards = self.senders.len();
        let by_shard = partition(&items, |it| it.pc, shards);
        let subs: Vec<(usize, Vec<PredictItem>)> = by_shard
            .iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .map(|(s, idxs)| (s, idxs.iter().map(|&i| items[i]).collect()))
            .collect();
        let slot = self.alloc_gather(
            idx,
            GatherKind::Predict {
                out: vec![None; items.len()],
                subs: by_shard,
            },
        );
        self.scatter(idx, slot, subs, |items, tag, reply| ShardJob::Predict {
            items,
            tag,
            reply,
        });
    }

    fn scatter_train(&mut self, idx: usize, items: Vec<TrainItem>) {
        if items.len() > MAX_BATCH {
            self.push_done(idx, Response::Error("batch exceeds MAX_BATCH".to_string()));
            return;
        }
        let shards = self.senders.len();
        let by_shard = partition(&items, |it| it.pc, shards);
        let subs: Vec<(usize, Vec<TrainItem>)> = by_shard
            .iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .map(|(s, idxs)| (s, idxs.iter().map(|&i| items[i]).collect()))
            .collect();
        let slot = self.alloc_gather(idx, GatherKind::Train { applied: 0, stale: 0 });
        self.scatter(idx, slot, subs, |items, tag, reply| ShardJob::Train {
            items,
            tag,
            reply,
        });
    }

    /// Non-blocking scatter over the owning shards. All-or-nothing: the
    /// first full queue answers `Busy` and puts the gather in discard mode
    /// for whatever was already enqueued.
    fn scatter<T>(
        &mut self,
        idx: usize,
        slot: usize,
        subs: Vec<(usize, Vec<T>)>,
        job_of: impl Fn(Vec<T>, u64, ReplySink) -> ShardJob,
    ) {
        let mut sent = 0u32;
        for (shard, sub) in subs {
            let n = sub.len() as u64;
            let tag = ((slot as u64) << TAG_SHARD_BITS) | shard as u64;
            let job = job_of(sub, tag, self.reply_sink.clone());
            if self.senders[shard].try_send(job).is_err() {
                self.metrics[shard].rejected_full.fetch_add(n, Ordering::Relaxed);
                if sent == 0 {
                    self.free_gather(slot);
                } else {
                    let g = self.gathers[slot].as_mut().expect("live gather");
                    g.remaining = sent;
                    g.discard = true;
                }
                self.push_done(idx, Response::Busy);
                return;
            }
            sent += 1;
        }
        if sent == 0 {
            // Empty batch: answer immediately, nothing to wait for.
            let g = self.gathers[slot].take().expect("live gather");
            self.free_gathers.push(slot);
            let resp = gather_response(g.kind);
            self.push_done(idx, resp);
        } else {
            self.gathers[slot].as_mut().expect("live gather").remaining = sent;
            if let Some(c) = self.conns[idx].as_mut() {
                c.inflight.push_back(Inflight::Waiting { gather: slot });
            }
        }
    }

    /// Applies every queued shard reply (non-blocking).
    fn drain_replies(&mut self) {
        while let Ok((tag, reply)) = self.reply_rx.try_recv() {
            self.on_reply(tag, reply);
        }
    }

    fn on_reply(&mut self, tag: u64, reply: ShardReply) {
        let slot = (tag >> TAG_SHARD_BITS) as usize;
        let shard = (tag & ((1 << TAG_SHARD_BITS) - 1)) as usize;
        let Some(g) = self.gathers.get_mut(slot).and_then(Option::as_mut) else {
            return; // only reachable if a worker fabricated a tag
        };
        match (&mut g.kind, reply) {
            (GatherKind::Predict { out, subs }, ShardReply::Predict(replies)) => {
                for (&i, r) in subs[shard].iter().zip(replies) {
                    out[i] = Some(r);
                }
            }
            (GatherKind::Train { applied, stale }, ShardReply::Train { applied: a, stale: s }) => {
                *applied += a;
                *stale += s;
            }
            // A mismatched reply kind still decrements `remaining` below,
            // so the slot cannot leak; a predict gather with holes answers
            // an explicit error.
            _ => {}
        }
        g.remaining -= 1;
        if g.remaining > 0 {
            return;
        }
        if g.discard {
            self.free_gather(slot);
            return;
        }
        let kind = std::mem::replace(&mut g.kind, GatherKind::Train { applied: 0, stale: 0 });
        let conn = g.conn;
        let resp = gather_response(kind);
        let frame = encode_or_error(resp);
        self.gathers[slot].as_mut().expect("live gather").result = Some(frame);
        self.service_conn(conn);
    }

    /// Moves every response whose turn has come into the send buffer,
    /// flushes, resumes paused parsing when below the hysteresis
    /// thresholds, updates epoll interest, and closes finished connections.
    fn service_conn(&mut self, idx: usize) {
        loop {
            self.pump(idx);
            let Some(c) = self.conns[idx].as_mut() else { return };
            if c.wr.flush(&mut c.stream).is_err() {
                self.close_conn(idx);
                return;
            }
            // Resume parsing frames that were already buffered while
            // paused — epoll will not re-report bytes we already hold.
            let resume = !c.reading
                && !c.eof
                && !c.poisoned
                && !self.draining
                && c.may_resume()
                && c.rd.buffered() > 0;
            if !resume {
                break;
            }
            c.reading = true;
            self.parse_buffered(idx);
            if self.conns[idx].is_none() {
                return;
            }
        }
        let Some(c) = self.conns[idx].as_mut() else { return };
        if !c.reading && !c.eof && !c.poisoned && !self.draining && c.may_resume() {
            c.reading = true; // nothing buffered; epoll reports new bytes
        }
        let done =
            c.finished() || (self.draining && c.inflight.is_empty() && c.wr.is_empty());
        if done {
            self.close_conn(idx);
        } else {
            self.update_interest(idx);
        }
    }

    /// Pops leading pipeline entries that are ready into the send buffer.
    fn pump(&mut self, idx: usize) {
        enum Next {
            Done,
            Gather(usize),
            Stop,
        }
        loop {
            let next = match self.conns[idx].as_ref() {
                None => return,
                Some(c) => match c.inflight.front() {
                    None => Next::Stop,
                    Some(Inflight::Done(_)) => Next::Done,
                    Some(Inflight::Waiting { gather }) => Next::Gather(*gather),
                },
            };
            match next {
                Next::Stop => return,
                Next::Done => {
                    let c = self.conns[idx].as_mut().expect("checked above");
                    let Some(Inflight::Done(bytes)) = c.inflight.pop_front() else {
                        unreachable!("front just observed")
                    };
                    c.wr.push(&bytes);
                }
                Next::Gather(slot) => {
                    let ready = self.gathers[slot].as_mut().and_then(|g| g.result.take());
                    let Some(bytes) = ready else { return };
                    self.free_gather(slot);
                    let c = self.conns[idx].as_mut().expect("checked above");
                    c.inflight.pop_front();
                    c.wr.push(&bytes);
                }
            }
        }
    }

    /// Queues an encoded response at the back of the connection's pipeline.
    fn push_done(&mut self, idx: usize, resp: Response) {
        let frame = encode_or_error(resp);
        if let Some(c) = self.conns[idx].as_mut() {
            c.inflight.push_back(Inflight::Done(frame));
        }
    }

    /// Stops accepting and starts the drain clock; connections owed
    /// nothing close now, the rest flush under the deadline.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.deadline = Some(Instant::now() + DRAIN_GRACE);
        self.accepting = false;
        self.poller.delete(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            let close = match self.conns[idx].as_ref() {
                Some(c) => c.inflight.is_empty() && c.wr.is_empty(),
                None => false,
            };
            if close {
                self.close_conn(idx);
            }
        }
    }

    /// Mirrors the connection's desired interests into epoll, skipping the
    /// syscall when nothing changed.
    fn update_interest(&mut self, idx: usize) {
        let draining = self.draining;
        let Some(c) = self.conns[idx].as_mut() else { return };
        let want_r = c.reading && !c.eof && !c.poisoned && !draining;
        let want_w = !c.wr.is_empty();
        if want_r != c.reg_read || want_w != c.want_write {
            let _ = self
                .poller
                .modify(c.stream.as_raw_fd(), idx as u64, want_r, want_w);
            c.reg_read = want_r;
            c.want_write = want_w;
        }
    }

    /// Closes a connection and detaches its outstanding gathers: slots
    /// with sub-replies still in flight flip to discard mode, completed
    /// ones free immediately.
    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        self.poller.delete(conn.stream.as_raw_fd());
        for inf in &conn.inflight {
            let Inflight::Waiting { gather } = *inf else { continue };
            let free_now = match self.gathers[gather].as_mut() {
                Some(g) if g.remaining > 0 => {
                    g.discard = true;
                    false
                }
                Some(_) => true,
                None => false,
            };
            if free_now {
                self.free_gather(gather);
            }
        }
        self.dead.push(idx);
    }

    fn alloc_gather(&mut self, conn: usize, kind: GatherKind) -> usize {
        let g = Gather {
            conn,
            kind,
            remaining: 0,
            discard: false,
            result: None,
        };
        match self.free_gathers.pop() {
            Some(i) => {
                self.gathers[i] = Some(g);
                i
            }
            None => {
                self.gathers.push(Some(g));
                self.gathers.len() - 1
            }
        }
    }

    fn free_gather(&mut self, slot: usize) {
        self.gathers[slot] = None;
        self.free_gathers.push(slot);
    }
}

/// Encodes the response, falling back to an `Error` frame (which always
/// encodes — its length is checked at construction) if the response
/// exceeds a wire limit.
fn encode_or_error(resp: Response) -> Vec<u8> {
    match resp.encode_frame() {
        Ok(frame) => frame,
        Err(e) => Response::Error(format!("response encoding failed: {e}"))
            .encode_frame()
            .expect("error response encodes"),
    }
}

/// Builds the response for a completed (or empty) gather.
fn gather_response(kind: GatherKind) -> Response {
    match kind {
        GatherKind::Predict { out, .. } => match out.into_iter().collect::<Option<Vec<_>>>() {
            Some(replies) => Response::Predict(replies),
            None => Response::Error("incomplete scatter-gather".to_string()),
        },
        GatherKind::Train { applied, stale } => Response::Train { applied, stale },
    }
}

/// Seconds since the Unix epoch, 0 when the clock is unavailable.
pub fn unix_now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Decodes a snapshot's per-shard payloads into one predictor per *target*
/// shard, fail-closed: every payload must decode before any state is used.
/// With matching counts each shard's state transfers bit-exactly; otherwise
/// all shards are union-merged and the merged predictor is cloned onto
/// every target shard. Entries live under folded-history hashes, not raw
/// PCs, so a literal re-split is impossible — but queries route by PC, so
/// each target shard only ever *sees* the slice of the union it owns, and
/// the cluster answers exactly like the merged predictor would.
///
/// # Errors
///
/// A human-readable message naming the payload or merge that failed.
pub fn predictors_from_snapshot(
    shards: &[Vec<u8>],
    target: usize,
) -> Result<Vec<AnyPredictor>, String> {
    if shards.is_empty() || target == 0 {
        return Err("snapshot has no shard payloads".to_string());
    }
    let mut decoded = Vec::with_capacity(shards.len());
    for (i, payload) in shards.iter().enumerate() {
        decoded.push(
            AnyPredictor::from_snapshot_bytes(payload)
                .map_err(|e| format!("shard {i} payload: {e}"))?,
        );
    }
    // The container's kind label covers the file as a whole; each payload
    // also self-describes its variant, and a hand-assembled container could
    // disagree with itself. A heterogeneous pool must never be built — even
    // when the counts match and no merge would force the issue.
    if let Some(mixed) = decoded
        .iter()
        .position(|p| std::mem::discriminant(p) != std::mem::discriminant(&decoded[0]))
    {
        return Err(format!(
            "shard {mixed} payload holds a different predictor kind than shard 0"
        ));
    }
    if decoded.len() == target {
        return Ok(decoded);
    }
    // Merge in shard order: conflict resolution decays the incumbent on
    // usefulness ties (an anti-mistraining measure — see DESIGN.md §12),
    // so the order is observable and must be deterministic.
    let mut rest = decoded.into_iter();
    let mut union = rest.next().expect("non-empty checked above");
    for (i, other) in rest.enumerate() {
        union
            .merge_from(&other)
            .map_err(|e| format!("merging shard {}: {e}", i + 1))?;
    }
    Ok(vec![union; target])
}

/// Gathers every shard's serialized state into one `Snapshot` response.
/// Runs inline on the event loop: the blocking sends and receives are safe
/// because shard workers never block (replies go to unbounded channels).
fn snapshot_response(
    senders: &[SyncSender<ShardJob>],
    metrics: &[Arc<ShardMetrics>],
    kind: PredictorKind,
) -> Response {
    let (tx, rx) = channel();
    for (shard, sender) in senders.iter().enumerate() {
        let job = ShardJob::Snapshot {
            tag: shard as u64,
            reply: ReplySink::new(tx.clone()),
        };
        if sender.send(job).is_err() {
            return Response::Error("shard worker exited".to_string());
        }
    }
    drop(tx);
    let mut payloads = vec![Vec::new(); senders.len()];
    let mut received = 0usize;
    for (tag, reply) in rx.iter() {
        let ShardReply::Snapshot(bytes) = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        payloads[tag as usize] = bytes;
        received += 1;
    }
    if received != senders.len() {
        return Response::Error("incomplete snapshot gather".to_string());
    }
    let file = SnapshotFile {
        kind_label: kind.label().into_owned(),
        created_unix_s: unix_now_s(),
        restarts: metrics[0].restarts.load(Ordering::Relaxed),
        shards: payloads,
    };
    let bytes = file.encode();
    if bytes.len() > MAX_SNAPSHOT_FRAME_PAYLOAD {
        return Response::Error("snapshot exceeds the wire payload limit".to_string());
    }
    Response::Snapshot(bytes)
}

/// Validates and scatters a `Restore` payload onto every shard. Inline on
/// the event loop, same blocking rationale as [`snapshot_response`].
fn restore_response(
    bytes: &[u8],
    senders: &[SyncSender<ShardJob>],
    metrics: &[Arc<ShardMetrics>],
    kind: PredictorKind,
) -> Response {
    let file = match SnapshotFile::decode(bytes) {
        Ok(f) => f,
        Err(e) => return Response::Error(format!("snapshot rejected: {e}")),
    };
    let expected = kind.label();
    if file.kind_label != expected {
        return Response::Error(format!(
            "snapshot rejected: holds {:?} state, this server runs {:?}",
            file.kind_label, expected
        ));
    }
    let predictors = match predictors_from_snapshot(&file.shards, senders.len()) {
        Ok(p) => p,
        Err(e) => return Response::Error(format!("snapshot rejected: {e}")),
    };
    let (tx, rx) = channel();
    for (shard, (sender, predictor)) in senders.iter().zip(predictors.into_iter()).enumerate() {
        let job = ShardJob::Restore {
            predictor: Box::new(predictor),
            tag: shard as u64,
            reply: ReplySink::new(tx.clone()),
        };
        if sender.send(job).is_err() {
            return Response::Error("shard worker exited".to_string());
        }
    }
    drop(tx);
    let mut restored_entries = 0u64;
    let mut received = 0usize;
    for (tag, reply) in rx.iter() {
        let ShardReply::Restore(entries) = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        metrics[tag as usize]
            .restored_entries
            .store(entries, Ordering::Relaxed);
        restored_entries += entries;
        received += 1;
    }
    if received != senders.len() {
        return Response::Error("incomplete restore scatter".to_string());
    }
    let age = unix_now_s().saturating_sub(file.created_unix_s);
    for m in metrics {
        m.snapshot_age_s.store(age, Ordering::Relaxed);
        m.restarts.store(file.restarts, Ordering::Relaxed);
    }
    Response::Restore { restored_entries }
}

/// Splits a batch's indices by owning shard.
fn partition<T>(items: &[T], pc_of: impl Fn(&T) -> u64, shards: usize) -> Vec<Vec<usize>> {
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, item) in items.iter().enumerate() {
        by_shard[shard_of(pc_of(item), shards)].push(i);
    }
    by_shard
}
