//! `mascotd`'s server core: TCP accept loop, per-connection framing, and
//! request dispatch onto the shard pool.
//!
//! One handler thread per connection reads frames with a short poll
//! timeout so it can notice a shutdown while idle without ever abandoning
//! a frame mid-read. Dispatch scatters a batch over the owning shards and
//! gathers the sub-replies back into request order.
//!
//! Backpressure is all-or-nothing per request: if *any* owning shard's
//! queue is full the client gets `Busy` immediately — the handler does not
//! wait for sub-batches that were already enqueued (their replies go to a
//! dropped channel, and any work they did simply ages out of the pending
//! table). The client treats `Busy` as "retry the whole batch", so
//! double-processed predictions only cost pending-table slots, never
//! correctness.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_snapshot::SnapshotFile;

use crate::metrics::ShardMetrics;
use crate::shard::{shard_of, ShardJob, ShardPool, ShardPoolConfig, ShardReply};
use crate::wire::{
    self, PredictItem, PredictReply, Request, Response, StatsReport, TrainItem, MAX_BATCH,
    MAX_SNAPSHOT_FRAME_PAYLOAD,
};

/// How often an idle connection handler wakes to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Predictor built on every shard.
    pub kind: PredictorKind,
    /// Shard pool sizing.
    pub pool: ShardPoolConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            kind: PredictorKind::Mascot,
            pool: ShardPoolConfig::default(),
        }
    }
}

/// State shared between the accept loop and the connection handlers.
struct Shared {
    senders: Vec<SyncSender<ShardJob>>,
    metrics: Vec<Arc<ShardMetrics>>,
    kind: PredictorKind,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn total_requests(&self) -> u64 {
        self.metrics
            .iter()
            .map(|m| m.requests.load(Ordering::Relaxed))
            .sum()
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    pool: ShardPool,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shards", &self.senders.len())
            .field("addr", &self.addr)
            .finish()
    }
}

impl Server {
    /// Binds the listener and spawns the shard pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        Self::bind_with(cfg, None)
    }

    /// Binds the listener and spawns the shard pool, seeding each shard
    /// with a pre-built predictor (snapshot warm start) when `predictors`
    /// is given. The pool's shard count follows `predictors.len()` in that
    /// case, overriding `cfg.pool.shards`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        cfg: &ServeConfig,
        predictors: Option<Vec<AnyPredictor>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = match predictors {
            Some(p) => ShardPool::with_predictors(p, &cfg.pool),
            None => ShardPool::new(cfg.kind, &cfg.pool),
        };
        let shared = Arc::new(Shared {
            senders: pool.senders().to_vec(),
            metrics: pool.metrics().iter().map(Arc::clone).collect(),
            kind: cfg.kind,
            shutdown: AtomicBool::new(false),
            addr,
        });
        Ok(Server {
            listener,
            pool,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Direct access to the shard pool (replay warm-up runs before `run`).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Serves until a `Shutdown` request, then drains every shard and
    /// returns the final statistics.
    pub fn run(self) -> StatsReport {
        self.run_collecting(false).0
    }

    /// Like [`Server::run`], but when `collect_snapshot` is set it also
    /// serializes every shard's final predictor state after the last
    /// connection drains and before the workers exit — the shutdown-path
    /// checkpoint `mascotd --snapshot-dir` persists.
    pub fn run_collecting(self, collect_snapshot: bool) -> (StatsReport, Vec<Vec<u8>>) {
        let Server {
            listener,
            pool,
            shared,
        } = self;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break; // the stream (often the self-connect nudge) is dropped
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            conns.push(
                std::thread::Builder::new()
                    .name("mascot-conn".to_string())
                    .spawn(move || handle_conn(stream, &shared))
                    .expect("spawn connection handler"),
            );
            conns.retain(|h| !h.is_finished());
        }
        for conn in conns {
            let _ = conn.join();
        }
        // All connection handlers are gone, so no new work can arrive; a
        // snapshot taken now is the final state. The pool's own senders are
        // still alive, so the workers are still draining and reachable.
        let payloads = if collect_snapshot {
            pool.snapshot_shards()
        } else {
            Vec::new()
        };
        // `shared` holds the last sender clones outside the pool — it must
        // go first, or the workers never observe disconnect and `shutdown`
        // joins forever.
        drop(shared);
        // Dropping the pool's own senders lets each worker drain its
        // remaining queue and exit.
        (pool.shutdown(), payloads)
    }

    /// Runs the server on a background thread; returns the bound address
    /// and the handle yielding the final statistics.
    pub fn spawn(self) -> (SocketAddr, JoinHandle<StatsReport>) {
        let addr = self.local_addr();
        let handle = std::thread::Builder::new()
            .name("mascotd-accept".to_string())
            .spawn(move || self.run())
            .expect("spawn server");
        (addr, handle)
    }
}

/// One connection: read frames until close, error, or shutdown.
fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut rd = match stream.try_clone() {
        Ok(rd) => rd,
        Err(_) => return,
    };
    let abort = || shared.shutdown.load(Ordering::Acquire);
    loop {
        let (code, payload) = match wire::read_frame_abortable(&mut rd, &abort) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close or idle shutdown
            Err(e) => {
                // Framing is unrecoverable mid-stream: report and drop.
                // (An Error response always encodes.)
                let resp = Response::Error(e.to_string());
                if let Ok(frame) = resp.encode_frame() {
                    let _ = stream.write_all(&frame);
                }
                return;
            }
        };
        let response = match Request::decode(code, &payload) {
            Ok(req) => dispatch(req, shared),
            // A well-framed but malformed payload: the stream is still in
            // sync, so answer and keep serving.
            Err(e) => Response::Error(e.to_string()),
        };
        let shutting_down = matches!(response, Response::Shutdown { .. });
        // Responses mirror validated requests (reply batch == request batch,
        // shard count fixed at startup), so encode failure here means a
        // server bug; drop the connection rather than desync the stream.
        let frame = match response.encode_frame() {
            Ok(frame) => frame,
            Err(_) => return,
        };
        if stream.write_all(&frame).is_err() {
            return;
        }
        if shutting_down {
            // Unblock the accept loop (it re-checks the flag per accept).
            let _ = TcpStream::connect(shared.addr);
            return;
        }
    }
}

fn dispatch(req: Request, shared: &Shared) -> Response {
    match req {
        Request::Predict(items) => dispatch_predict(items, shared),
        Request::Train(items) => dispatch_train(items, shared),
        Request::Stats => Response::Stats(StatsReport {
            shards: shared.metrics.iter().map(|m| m.snapshot()).collect(),
        }),
        Request::Shutdown => {
            let served = shared.total_requests();
            shared.shutdown.store(true, Ordering::Release);
            Response::Shutdown { served }
        }
        Request::Snapshot => dispatch_snapshot(shared),
        Request::Restore(bytes) => dispatch_restore(&bytes, shared),
    }
}

/// Seconds since the Unix epoch, 0 when the clock is unavailable.
pub fn unix_now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Decodes a snapshot's per-shard payloads into one predictor per *target*
/// shard, fail-closed: every payload must decode before any state is used.
/// With matching counts each shard's state transfers bit-exactly; otherwise
/// all shards are union-merged and the merged predictor is cloned onto
/// every target shard. Entries live under folded-history hashes, not raw
/// PCs, so a literal re-split is impossible — but queries route by PC, so
/// each target shard only ever *sees* the slice of the union it owns, and
/// the cluster answers exactly like the merged predictor would.
///
/// # Errors
///
/// A human-readable message naming the payload or merge that failed.
pub fn predictors_from_snapshot(
    shards: &[Vec<u8>],
    target: usize,
) -> Result<Vec<AnyPredictor>, String> {
    if shards.is_empty() || target == 0 {
        return Err("snapshot has no shard payloads".to_string());
    }
    let mut decoded = Vec::with_capacity(shards.len());
    for (i, payload) in shards.iter().enumerate() {
        decoded.push(
            AnyPredictor::from_snapshot_bytes(payload)
                .map_err(|e| format!("shard {i} payload: {e}"))?,
        );
    }
    // The container's kind label covers the file as a whole; each payload
    // also self-describes its variant, and a hand-assembled container could
    // disagree with itself. A heterogeneous pool must never be built — even
    // when the counts match and no merge would force the issue.
    if let Some(mixed) = decoded
        .iter()
        .position(|p| std::mem::discriminant(p) != std::mem::discriminant(&decoded[0]))
    {
        return Err(format!(
            "shard {mixed} payload holds a different predictor kind than shard 0"
        ));
    }
    if decoded.len() == target {
        return Ok(decoded);
    }
    // Merge in shard order: conflict resolution keeps the incumbent on
    // ties, so the order is observable and must be deterministic.
    let mut rest = decoded.into_iter();
    let mut union = rest.next().expect("non-empty checked above");
    for (i, other) in rest.enumerate() {
        union
            .merge_from(&other)
            .map_err(|e| format!("merging shard {}: {e}", i + 1))?;
    }
    Ok(vec![union; target])
}

fn dispatch_snapshot(shared: &Shared) -> Response {
    let (tx, rx) = channel();
    for (shard, sender) in shared.senders.iter().enumerate() {
        let job = ShardJob::Snapshot {
            tag: shard as u32,
            reply: tx.clone(),
        };
        if sender.send(job).is_err() {
            return Response::Error("shard worker exited".to_string());
        }
    }
    drop(tx);
    let mut payloads = vec![Vec::new(); shared.senders.len()];
    let mut received = 0usize;
    for (tag, reply) in rx.iter() {
        let ShardReply::Snapshot(bytes) = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        payloads[tag as usize] = bytes;
        received += 1;
    }
    if received != shared.senders.len() {
        return Response::Error("incomplete snapshot gather".to_string());
    }
    let file = SnapshotFile {
        kind_label: shared.kind.label().into_owned(),
        created_unix_s: unix_now_s(),
        restarts: shared.metrics[0].restarts.load(Ordering::Relaxed),
        shards: payloads,
    };
    let bytes = file.encode();
    if bytes.len() > MAX_SNAPSHOT_FRAME_PAYLOAD {
        return Response::Error("snapshot exceeds the wire payload limit".to_string());
    }
    Response::Snapshot(bytes)
}

fn dispatch_restore(bytes: &[u8], shared: &Shared) -> Response {
    let file = match SnapshotFile::decode(bytes) {
        Ok(f) => f,
        Err(e) => return Response::Error(format!("snapshot rejected: {e}")),
    };
    let expected = shared.kind.label();
    if file.kind_label != expected {
        return Response::Error(format!(
            "snapshot rejected: holds {:?} state, this server runs {:?}",
            file.kind_label, expected
        ));
    }
    let predictors = match predictors_from_snapshot(&file.shards, shared.senders.len()) {
        Ok(p) => p,
        Err(e) => return Response::Error(format!("snapshot rejected: {e}")),
    };
    let (tx, rx) = channel();
    for (shard, (sender, predictor)) in shared
        .senders
        .iter()
        .zip(predictors.into_iter())
        .enumerate()
    {
        let job = ShardJob::Restore {
            predictor: Box::new(predictor),
            tag: shard as u32,
            reply: tx.clone(),
        };
        if sender.send(job).is_err() {
            return Response::Error("shard worker exited".to_string());
        }
    }
    drop(tx);
    let mut restored_entries = 0u64;
    let mut received = 0usize;
    for (tag, reply) in rx.iter() {
        let ShardReply::Restore(entries) = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        shared.metrics[tag as usize]
            .restored_entries
            .store(entries, Ordering::Relaxed);
        restored_entries += entries;
        received += 1;
    }
    if received != shared.senders.len() {
        return Response::Error("incomplete restore scatter".to_string());
    }
    let age = unix_now_s().saturating_sub(file.created_unix_s);
    for m in &shared.metrics {
        m.snapshot_age_s.store(age, Ordering::Relaxed);
        m.restarts.store(file.restarts, Ordering::Relaxed);
    }
    Response::Restore { restored_entries }
}

/// Splits a batch's indices by owning shard.
fn partition<T>(items: &[T], pc_of: impl Fn(&T) -> u64, shards: usize) -> Vec<Vec<usize>> {
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, item) in items.iter().enumerate() {
        by_shard[shard_of(pc_of(item), shards)].push(i);
    }
    by_shard
}

fn dispatch_predict(items: Vec<PredictItem>, shared: &Shared) -> Response {
    if items.len() > MAX_BATCH {
        return Response::Error("batch exceeds MAX_BATCH".to_string());
    }
    let shards = shared.senders.len();
    let by_shard = partition(&items, |it| it.pc, shards);
    let (tx, rx) = channel();
    let mut outstanding = 0u32;
    for (shard, idxs) in by_shard.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let sub: Vec<_> = idxs.iter().map(|&i| items[i]).collect();
        let job = ShardJob::Predict {
            items: sub,
            tag: shard as u32,
            reply: tx.clone(),
        };
        if shared.senders[shard].try_send(job).is_err() {
            shared.metrics[shard]
                .rejected_full
                .fetch_add(idxs.len() as u64, Ordering::Relaxed);
            // Abandon the scatter: `rx` drops here, so replies from
            // sub-batches already enqueued land in a closed channel.
            return Response::Busy;
        }
        outstanding += 1;
    }
    drop(tx);
    let mut out: Vec<Option<PredictReply>> = vec![None; items.len()];
    for _ in 0..outstanding {
        let Ok((shard, reply)) = rx.recv() else {
            return Response::Error("shard worker exited".to_string());
        };
        let ShardReply::Predict(replies) = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        for (&i, r) in by_shard[shard as usize].iter().zip(replies) {
            out[i] = Some(r);
        }
    }
    match out.into_iter().collect::<Option<Vec<_>>>() {
        Some(replies) => Response::Predict(replies),
        None => Response::Error("incomplete scatter-gather".to_string()),
    }
}

fn dispatch_train(items: Vec<TrainItem>, shared: &Shared) -> Response {
    if items.len() > MAX_BATCH {
        return Response::Error("batch exceeds MAX_BATCH".to_string());
    }
    let shards = shared.senders.len();
    let by_shard = partition(&items, |it| it.pc, shards);
    let (tx, rx) = channel();
    let mut outstanding = 0u32;
    for (shard, idxs) in by_shard.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let sub: Vec<_> = idxs.iter().map(|&i| items[i]).collect();
        let job = ShardJob::Train {
            items: sub,
            tag: shard as u32,
            reply: tx.clone(),
        };
        if shared.senders[shard].try_send(job).is_err() {
            shared.metrics[shard]
                .rejected_full
                .fetch_add(idxs.len() as u64, Ordering::Relaxed);
            return Response::Busy;
        }
        outstanding += 1;
    }
    drop(tx);
    let (mut applied, mut stale) = (0u32, 0u32);
    for _ in 0..outstanding {
        let Ok((_, reply)) = rx.recv() else {
            return Response::Error("shard worker exited".to_string());
        };
        let ShardReply::Train { applied: a, stale: s } = reply else {
            return Response::Error("mismatched shard reply".to_string());
        };
        applied += a;
        stale += s;
    }
    Response::Train { applied, stale }
}
