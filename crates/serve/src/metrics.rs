//! Per-shard service metrics: lock-free counters plus a fixed-bucket
//! latency histogram.
//!
//! Shard workers and connection handlers update atomics on the hot path;
//! `Stats` requests snapshot them without stopping the world. The
//! histogram uses **log-linear** nanosecond buckets (HDR-style): each
//! power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
//! so recording is a `leading_zeros`, a shift, and one relaxed
//! `fetch_add`, and percentile queries are exact to within
//! `1/SUB_BUCKETS` of the value (12.5%). That resolution matters for the
//! p999 numbers `mascot-loadgen --soak` gates on — the plain log2 buckets
//! this replaced could only bound a tail sample to within a factor of
//! two, which would make any SLO check either meaningless or flaky. No
//! allocation, no locks.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::ShardStats;

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`). Quantile
/// error is bounded by `1/SUB_BUCKETS` of the reported value.
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3; // log2(SUB_BUCKETS)

/// Total buckets: values `0..SUB_BUCKETS` get exact unit buckets, then
/// every octave `[2^o, 2^(o+1))` for `o in SUB_BITS..=63` contributes
/// `SUB_BUCKETS` buckets.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// A fixed-bucket, lock-free latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index for a sample of `ns` nanoseconds.
fn bucket_of(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        ns as usize
    } else {
        // Octave = position of the leading one; the next SUB_BITS bits
        // select the linear sub-bucket within it.
        let octave = 63 - ns.leading_zeros();
        let sub = ((ns >> (octave - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        (octave - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
    }
}

/// The exclusive upper bound, in ns, of bucket `i` — what quantile queries
/// report, so the approximation always errs on the pessimistic side.
fn bucket_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        (i + 1) as u64
    } else {
        let group = (i / SUB_BUCKETS) as u32; // >= 1
        let sub = (i % SUB_BUCKETS) as u64;
        let octave = group + SUB_BITS - 1; // 3..=63
        let lo = (SUB_BUCKETS as u64 + sub) << (octave - SUB_BITS);
        lo.saturating_add(1u64 << (octave - SUB_BITS))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s counts.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Accumulates another snapshot into this one (cross-shard or
    /// cross-thread aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The upper bound (exclusive, in ns) of the bucket containing the
    /// `q`-quantile sample, or 0 for an empty histogram. `q` is clamped to
    /// `[0, 1]`; e.g. `quantile_ns(0.999)` is the approximate p999,
    /// overestimating by at most `1/SUB_BUCKETS` of the true value.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        u64::MAX
    }
}

/// Counters owned by one shard worker (plus the queue-full count, which the
/// connection handlers increment on that shard's behalf).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Predict + train items processed.
    pub requests: AtomicU64,
    /// Predict items processed.
    pub predicts: AtomicU64,
    /// Train items applied to the predictor.
    pub trains: AtomicU64,
    /// Train items dropped on a stale/mismatched ticket.
    pub stale_trains: AtomicU64,
    /// Pending predictions recycled before their train arrived (the
    /// in-flight window outran `pending_capacity`); fatal under
    /// `strict_tickets`.
    pub evicted_pending: AtomicU64,
    /// Applied trains whose prediction was `NoDependence` on a dependent
    /// outcome.
    pub missed_dependencies: AtomicU64,
    /// Applied trains whose prediction was `Dependence` on an independent
    /// outcome.
    pub false_dependencies: AtomicU64,
    /// Applied trains whose prediction was `Bypass` on an independent
    /// outcome — the squash-causing shape a mistraining attacker induces
    /// (DESIGN.md §12).
    pub false_bypasses: AtomicU64,
    /// Queue pops that did work.
    pub batches: AtomicU64,
    /// Items rejected with `Busy` because this shard's queue was full.
    pub rejected_full: AtomicU64,
    /// Entries restored into this shard's predictor at the last warm start
    /// or `Restore` (0 when the shard started cold).
    pub restored_entries: AtomicU64,
    /// Age of the restored snapshot at restore time, seconds.
    pub snapshot_age_s: AtomicU64,
    /// Checkpoint/restore cycles this predictor state has been through.
    pub restarts: AtomicU64,
    /// Per-job service time.
    pub service: Histogram,
}

impl ShardMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots every counter into the wire representation.
    pub fn snapshot(&self) -> ShardStats {
        let service = self.service.snapshot();
        ShardStats {
            requests: self.requests.load(Ordering::Relaxed),
            predicts: self.predicts.load(Ordering::Relaxed),
            trains: self.trains.load(Ordering::Relaxed),
            stale_trains: self.stale_trains.load(Ordering::Relaxed),
            evicted_pending: self.evicted_pending.load(Ordering::Relaxed),
            missed_dependencies: self.missed_dependencies.load(Ordering::Relaxed),
            false_dependencies: self.false_dependencies.load(Ordering::Relaxed),
            false_bypasses: self.false_bypasses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            service_samples: service.total(),
            service_p50_ns: service.quantile_ns(0.50),
            service_p99_ns: service.quantile_ns(0.99),
            restored_entries: self.restored_entries.load(Ordering::Relaxed),
            snapshot_age_s: self.snapshot_age_s.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_linear() {
        // Unit buckets below SUB_BUCKETS.
        for ns in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_of(ns), ns as usize);
            assert_eq!(bucket_bound(ns as usize), ns + 1);
        }
        // Octave boundaries are continuous: bucket_of(2^o) starts the next
        // group, and every bucket's bound is the next bucket's start.
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(1024), 8 * SUB_BUCKETS);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_of(bucket_bound(i)),
                i + 1,
                "bucket {i} bound must open bucket {}",
                i + 1
            );
        }
    }

    /// The property the SLO gate relies on: the reported quantile bounds
    /// the true sample from above by at most 1/SUB_BUCKETS.
    #[test]
    fn quantile_error_is_bounded() {
        for ns in [1u64, 9, 100, 512, 4_096, 65_000, 1_000_000, 123_456_789] {
            let h = Histogram::new();
            h.record_ns(ns);
            let q = h.snapshot().quantile_ns(1.0);
            assert!(q > ns, "bound is exclusive: {q} vs {ns}");
            assert!(
                (q - ns) as f64 <= (ns as f64 / SUB_BUCKETS as f64) + 1.0,
                "error too large: sample {ns}, reported {q}"
            );
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~512 ns), 9 medium (~64 µs), 1 slow (~8 ms).
        for _ in 0..90 {
            h.record_ns(512);
        }
        for _ in 0..9 {
            h.record_ns(64_000);
        }
        h.record_ns(8_000_000);
        let s = h.snapshot();
        assert_eq!(s.total(), 100);
        assert_eq!(s.quantile_ns(0.50), 576); // 512's bucket spans [512, 576)
        assert!(s.quantile_ns(0.99) >= 64_000 && s.quantile_ns(0.99) < 8_000_000);
        assert!(s.quantile_ns(1.0) >= 8_000_000);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(100);
        b.record_ns(100);
        b.record_ns(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn metrics_snapshot_carries_counters() {
        let m = ShardMetrics::new();
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.predicts.fetch_add(4, Ordering::Relaxed);
        m.trains.fetch_add(1, Ordering::Relaxed);
        m.service.record_ns(2_000);
        let s = m.snapshot();
        assert_eq!(s.requests, 5);
        assert_eq!(s.predicts, 4);
        assert_eq!(s.trains, 1);
        assert_eq!(s.service_samples, 1);
        assert!(s.service_p50_ns >= 2_000 && s.service_p50_ns <= 2_304);
    }
}
