//! Per-shard service metrics: lock-free counters plus a fixed-bucket
//! latency histogram.
//!
//! Shard workers and connection handlers update atomics on the hot path;
//! `Stats` requests snapshot them without stopping the world. The histogram
//! uses power-of-two nanosecond buckets, so recording is a `leading_zeros`
//! plus one relaxed `fetch_add` and percentile queries are exact to within
//! a factor of two — plenty for p50/p99 service-time reporting, with no
//! allocation and no locks.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::ShardStats;

/// Number of power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))` ns,
/// with bucket 0 also holding 0 ns and the last bucket holding everything
/// above ~9 minutes.
pub const NUM_BUCKETS: usize = 40;

/// A fixed-bucket, lock-free latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Records one sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s counts.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Accumulates another snapshot into this one (cross-shard or
    /// cross-thread aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The upper bound (exclusive, in ns) of the bucket containing the
    /// `q`-quantile sample, or 0 for an empty histogram. `q` is clamped to
    /// `[0, 1]`; e.g. `quantile_ns(0.99)` is the approximate p99.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << NUM_BUCKETS.min(63)
    }
}

/// Counters owned by one shard worker (plus the queue-full count, which the
/// connection handlers increment on that shard's behalf).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Predict + train items processed.
    pub requests: AtomicU64,
    /// Predict items processed.
    pub predicts: AtomicU64,
    /// Train items applied to the predictor.
    pub trains: AtomicU64,
    /// Train items dropped on a stale/mismatched ticket.
    pub stale_trains: AtomicU64,
    /// Queue pops that did work.
    pub batches: AtomicU64,
    /// Items rejected with `Busy` because this shard's queue was full.
    pub rejected_full: AtomicU64,
    /// Entries restored into this shard's predictor at the last warm start
    /// or `Restore` (0 when the shard started cold).
    pub restored_entries: AtomicU64,
    /// Age of the restored snapshot at restore time, seconds.
    pub snapshot_age_s: AtomicU64,
    /// Checkpoint/restore cycles this predictor state has been through.
    pub restarts: AtomicU64,
    /// Per-job service time.
    pub service: Histogram,
}

impl ShardMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots every counter into the wire representation.
    pub fn snapshot(&self) -> ShardStats {
        let service = self.service.snapshot();
        ShardStats {
            requests: self.requests.load(Ordering::Relaxed),
            predicts: self.predicts.load(Ordering::Relaxed),
            trains: self.trains.load(Ordering::Relaxed),
            stale_trains: self.stale_trains.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            service_samples: service.total(),
            service_p50_ns: service.quantile_ns(0.50),
            service_p99_ns: service.quantile_ns(0.99),
            restored_entries: self.restored_entries.load(Ordering::Relaxed),
            snapshot_age_s: self.snapshot_age_s.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~512 ns), 9 medium (~64 µs), 1 slow (~8 ms).
        for _ in 0..90 {
            h.record_ns(512);
        }
        for _ in 0..9 {
            h.record_ns(64_000);
        }
        h.record_ns(8_000_000);
        let s = h.snapshot();
        assert_eq!(s.total(), 100);
        assert_eq!(s.quantile_ns(0.50), 1024); // upper bound of the 512 bucket
        assert!(s.quantile_ns(0.99) >= 65_536 && s.quantile_ns(0.99) < 8_000_000);
        assert!(s.quantile_ns(1.0) >= 8_000_000);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(100);
        b.record_ns(100);
        b.record_ns(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn metrics_snapshot_carries_counters() {
        let m = ShardMetrics::new();
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.predicts.fetch_add(4, Ordering::Relaxed);
        m.trains.fetch_add(1, Ordering::Relaxed);
        m.service.record_ns(2_000);
        let s = m.snapshot();
        assert_eq!(s.requests, 5);
        assert_eq!(s.predicts, 4);
        assert_eq!(s.trains, 1);
        assert_eq!(s.service_samples, 1);
        assert!(s.service_p50_ns >= 2_048);
    }
}
