//! The `mascot-serve` binary wire protocol.
//!
//! A versioned little-endian framing in the style of the trace codec
//! (`mascot_sim::codec`): every frame is
//!
//! ```text
//! magic "MSRV" (4) | version (1) | code (1) | payload_len u32 | payload
//! ```
//!
//! Requests carry an [`Opcode`] in the code byte; responses carry a
//! [`Status`]. Predict and Train payloads are length-prefixed micro-batches
//! of fixed-size items, so a frame is validated arithmetically (`payload_len
//! == 2 + count * item_size`) before any allocation, and the claimed batch
//! size is capped at [`MAX_BATCH`] — a hostile header can never drive a
//! large allocation or a panic.
//!
//! Predictor metadata ([`mascot_predictors::AnyMeta`]) never crosses the
//! wire: a `Predict` response returns a per-item *ticket* naming the
//! server-side slot holding the `(prediction, meta)` pair, and the matching
//! `Train` request quotes the ticket back (the service-level analogue of
//! carrying TAGE lookup indices in a ROB payload). See `DESIGN.md` §A.

use std::io::{self, Read, Write};

use mascot::prediction::{
    BypassClass, LoadOutcome, MemDepPrediction, ObservedDependence, StoreDistance,
};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"MSRV";
/// Protocol version. Version 2 added the `Snapshot`/`Restore` opcodes and
/// three warm-start counters per [`ShardStats`] entry; version 3 added the
/// pending-eviction counter and the per-shard misprediction taxonomy
/// (DESIGN.md §12). Older frames are rejected with
/// [`WireError::BadVersion`] (the stats layout changed, so silent interop
/// would mis-parse).
pub const VERSION: u8 = 3;
/// Bytes in a frame header (magic + version + code + payload length).
pub const HEADER_LEN: usize = 10;
/// Upper bound on a regular frame payload, enforced before allocation.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;
/// Upper bound on a frame payload that carries predictor-state snapshot
/// bytes (`Restore` requests and `Ok` responses, which include `Snapshot`
/// replies). Matches `mascot_snapshot`'s own per-shard payload cap.
pub const MAX_SNAPSHOT_FRAME_PAYLOAD: usize = 1 << 26;
/// Upper bound on items per micro-batch.
pub const MAX_BATCH: usize = 4096;
/// Upper bound on shards a `Stats` response may describe.
pub const MAX_SHARDS: usize = 1024;

/// Encoded size of one [`PredictItem`].
const PREDICT_ITEM_BYTES: usize = 16;
/// Encoded size of one [`TrainItem`]: ticket + pc + outcome
/// (flag, distance, class, store_pc, branches_between).
const TRAIN_ITEM_BYTES: usize = 4 + 8 + 1 + 1 + 1 + 8 + 4;
/// Encoded size of one [`PredictReply`].
const PREDICT_REPLY_BYTES: usize = 6;
/// Encoded size of one [`ShardStats`].
const SHARD_STATS_BYTES: usize = 16 * 8;

/// The payload cap for a frame with the given code byte. Snapshot bytes
/// flow in `Restore` requests (code 6) and `Ok` responses (code 0, which is
/// also every `Snapshot` reply); those get the larger cap, everything else
/// keeps the tight one.
pub fn max_payload(code: u8) -> usize {
    match code {
        0 | 6 => MAX_SNAPSHOT_FRAME_PAYLOAD,
        _ => MAX_FRAME_PAYLOAD,
    }
}

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// A micro-batch of load predictions.
    Predict = 1,
    /// A micro-batch of commit-time training records.
    Train = 2,
    /// Snapshot of per-shard service metrics.
    Stats = 3,
    /// Graceful shutdown: drain in-flight batches, then exit.
    Shutdown = 4,
    /// Serialize the full predictor state of every shard (v2).
    Snapshot = 5,
    /// Replace the predictor state of every shard from a snapshot (v2).
    Restore = 6,
}

impl Opcode {
    fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            1 => Opcode::Predict,
            2 => Opcode::Train,
            3 => Opcode::Stats,
            4 => Opcode::Shutdown,
            5 => Opcode::Snapshot,
            6 => Opcode::Restore,
            other => return Err(WireError::BadOpcode(other)),
        })
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was served; payload shape depends on the request opcode.
    Ok = 0,
    /// A shard queue was full; the batch was rejected (backpressure).
    Busy = 1,
    /// The request was malformed; payload is a UTF-8 message.
    Error = 2,
}

/// Errors produced while reading or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// The frame does not start with the `MSRV` magic.
    BadMagic,
    /// The protocol version is not supported.
    BadVersion(u8),
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response status.
    BadStatus(u8),
    /// The payload length exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// A batch handed to the encoder exceeds the wire limit. Caught at
    /// encode time: the length prefix is a `u16`, so an unchecked cast
    /// would silently truncate (65 536 items would go out as 0).
    BatchTooLarge(usize),
    /// The payload was truncated or a field was out of range.
    Corrupt(&'static str),
    /// The peer closed the connection where a frame was expected.
    Closed,
    /// An underlying I/O error.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a mascot-serve frame (bad magic)"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOpcode(c) => write!(f, "unknown opcode {c}"),
            WireError::BadStatus(c) => write!(f, "unknown response status {c}"),
            WireError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            WireError::BatchTooLarge(n) => {
                write!(f, "batch of {n} items exceeds the wire limit of {MAX_BATCH}")
            }
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One load-prediction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictItem {
    /// PC of the load instruction (also the sharding key).
    pub pc: u64,
    /// Count of stores dispatched before this load (sequence-based
    /// predictors convert absolute store ids to distances with it).
    pub store_seq: u64,
}

/// One prediction result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictReply {
    /// Server-side slot holding the `(prediction, meta)` pair; quote it
    /// back in the matching [`TrainItem`].
    pub ticket: u32,
    /// The three-way prediction.
    pub prediction: MemDepPrediction,
}

/// One commit-time training record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainItem {
    /// Ticket from the [`PredictReply`] this outcome resolves.
    pub ticket: u32,
    /// PC of the load (must match the ticket's; also the sharding key).
    pub pc: u64,
    /// The observed outcome.
    pub outcome: LoadOutcome,
}

/// Point-in-time counters for one shard, as reported by `Stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Predict + train items processed.
    pub requests: u64,
    /// Predict items processed.
    pub predicts: u64,
    /// Train items applied.
    pub trains: u64,
    /// Train items dropped because their ticket had been evicted or did not
    /// match (the prediction outlived the pending window).
    pub stale_trains: u64,
    /// Pending predictions recycled before their train arrived (the
    /// in-flight window outran the shard's pending capacity); fatal when
    /// the pool runs with `strict_tickets`.
    pub evicted_pending: u64,
    /// Applied trains that predicted `NoDependence` on a dependent outcome.
    pub missed_dependencies: u64,
    /// Applied trains that predicted `Dependence` on an independent
    /// outcome.
    pub false_dependencies: u64,
    /// Applied trains that predicted `Bypass` on an independent outcome —
    /// the squash-causing shape a mistraining attacker induces
    /// (DESIGN.md §12).
    pub false_bypasses: u64,
    /// Queue pops that did work (each pop drains up to the configured
    /// micro-batch of jobs).
    pub batches: u64,
    /// Items rejected with `Busy` because this shard's queue was full.
    pub rejected_full: u64,
    /// Number of service-time samples in the histogram.
    pub service_samples: u64,
    /// Approximate p50 service time per job, nanoseconds.
    pub service_p50_ns: u64,
    /// Approximate p99 service time per job, nanoseconds.
    pub service_p99_ns: u64,
    /// Entries restored into this shard's predictor at the last warm start
    /// or `Restore` (0 on a cold start).
    pub restored_entries: u64,
    /// Age of the restored snapshot at restore time, seconds (0 when cold).
    pub snapshot_age_s: u64,
    /// Times this predictor state has been through a checkpoint/restore
    /// cycle (carried in the snapshot itself, so it survives restarts).
    pub restarts: u64,
}

/// The full `Stats` response: one entry per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl StatsReport {
    /// Total items processed across shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total predict items across shards.
    pub fn total_predicts(&self) -> u64 {
        self.shards.iter().map(|s| s.predicts).sum()
    }

    /// Total applied train items across shards.
    pub fn total_trains(&self) -> u64 {
        self.shards.iter().map(|s| s.trains).sum()
    }

    /// Total items rejected with `Busy` across shards.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_full).sum()
    }

    /// Total entries restored across shards at the last warm start.
    pub fn total_restored(&self) -> u64 {
        self.shards.iter().map(|s| s.restored_entries).sum()
    }

    /// Total pending predictions evicted before their train arrived.
    pub fn total_evicted_pending(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_pending).sum()
    }

    /// Total applied-train mispredictions across shards (missed + false
    /// dependencies + false bypasses) — the serving-side pollution signal.
    pub fn total_mispredictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.missed_dependencies + s.false_dependencies + s.false_bypasses)
            .sum()
    }
}

/// A request frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Micro-batch of prediction queries.
    Predict(Vec<PredictItem>),
    /// Micro-batch of training records.
    Train(Vec<TrainItem>),
    /// Metrics snapshot.
    Stats,
    /// Graceful shutdown.
    Shutdown,
    /// Serialize the full predictor state of every shard.
    Snapshot,
    /// Replace every shard's predictor state from an encoded
    /// `mascot_snapshot::SnapshotFile` container (opaque at this layer).
    Restore(Vec<u8>),
}

/// A response frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Predictions, in request order.
    Predict(Vec<PredictReply>),
    /// Training summary.
    Train {
        /// Items whose ticket matched and trained the predictor.
        applied: u32,
        /// Items dropped on a stale/mismatched ticket.
        stale: u32,
    },
    /// Metrics snapshot.
    Stats(StatsReport),
    /// Shutdown acknowledged.
    Shutdown {
        /// Total items served over the server's lifetime.
        served: u64,
    },
    /// An encoded `mascot_snapshot::SnapshotFile` container holding every
    /// shard's predictor state (opaque at this layer).
    Snapshot(Vec<u8>),
    /// Restore summary.
    Restore {
        /// Entries restored across all shards.
        restored_entries: u64,
    },
    /// Backpressure: a shard queue was full, the batch was rejected.
    Busy,
    /// The request was malformed.
    Error(String),
}

// ---------------------------------------------------------------------------
// Little-endian payload primitives (same style as mascot_sim::codec).

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Corrupt("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Corrupt("trailing bytes"))
        }
    }
}

/// Reads and validates a batch count, bounding the upcoming allocation by
/// the payload the peer actually sent.
fn batch_count(r: &mut Reader<'_>, item_bytes: usize) -> Result<usize, WireError> {
    let count = usize::from(r.u16()?);
    if count > MAX_BATCH {
        return Err(WireError::Corrupt("batch exceeds MAX_BATCH"));
    }
    if r.buf.len() - r.pos != count * item_bytes {
        return Err(WireError::Corrupt("batch length mismatch"));
    }
    Ok(count)
}

/// Validates an outgoing batch size against [`MAX_BATCH`] and returns the
/// `u16` count prefix — the encode-time twin of [`batch_count`].
fn batch_len(len: usize) -> Result<u16, WireError> {
    if len > MAX_BATCH {
        return Err(WireError::BatchTooLarge(len));
    }
    Ok(len as u16)
}

fn class_code(c: BypassClass) -> u8 {
    match c {
        BypassClass::DirectBypass => 0,
        BypassClass::NoOffset => 1,
        BypassClass::Offset => 2,
        BypassClass::MdpOnly => 3,
    }
}

fn class_from(code: u8) -> Result<BypassClass, WireError> {
    Ok(match code {
        0 => BypassClass::DirectBypass,
        1 => BypassClass::NoOffset,
        2 => BypassClass::Offset,
        3 => BypassClass::MdpOnly,
        _ => return Err(WireError::Corrupt("bypass class")),
    })
}

fn put_prediction(out: &mut Vec<u8>, p: MemDepPrediction) {
    let (tag, dist) = match p {
        MemDepPrediction::NoDependence => (0u8, 0u8),
        MemDepPrediction::Dependence { distance } => (1, distance.get()),
        MemDepPrediction::Bypass { distance } => (2, distance.get()),
    };
    out.push(tag);
    out.push(dist);
}

fn get_prediction(tag: u8, dist: u8) -> Result<MemDepPrediction, WireError> {
    let distance = || {
        StoreDistance::new(u32::from(dist)).ok_or(WireError::Corrupt("store distance out of range"))
    };
    Ok(match tag {
        0 if dist == 0 => MemDepPrediction::NoDependence,
        0 => return Err(WireError::Corrupt("distance on no-dependence")),
        1 => MemDepPrediction::Dependence {
            distance: distance()?,
        },
        2 => MemDepPrediction::Bypass {
            distance: distance()?,
        },
        _ => return Err(WireError::Corrupt("prediction tag")),
    })
}

fn put_outcome(out: &mut Vec<u8>, o: &LoadOutcome) {
    match &o.dependence {
        None => {
            out.push(0);
            out.push(0);
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Some(d) => {
            out.push(1);
            out.push(d.distance.get());
            out.push(class_code(d.class));
            out.extend_from_slice(&d.store_pc.to_le_bytes());
            out.extend_from_slice(&d.branches_between.to_le_bytes());
        }
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<LoadOutcome, WireError> {
    let flag = r.u8()?;
    let dist = r.u8()?;
    let class = r.u8()?;
    let store_pc = r.u64()?;
    let branches_between = r.u32()?;
    match flag {
        0 => Ok(LoadOutcome::independent()),
        1 => Ok(LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(u32::from(dist))
                .ok_or(WireError::Corrupt("outcome distance out of range"))?,
            class: class_from(class)?,
            store_pc,
            branches_between,
        })),
        _ => Err(WireError::Corrupt("outcome flag")),
    }
}

// ---------------------------------------------------------------------------
// Framing.

/// Assembles a complete frame (header + payload) for a single `write_all`.
pub fn encode_frame(code: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= max_payload(code), "payload exceeds limit");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(code);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Fills `buf` from `r`, retrying on timeouts.
///
/// Returns `Ok(false)` when the stream closed or `abort()` fired *before
/// the first byte* (an idle, clean stop); once a frame has started, both a
/// mid-frame close and an abort-while-stalled are corruption. `abort` is
/// consulted only when the underlying read times out (`WouldBlock` /
/// `TimedOut`), which requires a read timeout on the stream to ever fire.
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    abort: &dyn Fn() -> bool,
) -> Result<bool, WireError> {
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => {
                return if pos == 0 {
                    Ok(false)
                } else {
                    Err(WireError::Corrupt("connection closed mid-frame"))
                }
            }
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if abort() && pos == 0 {
                    return Ok(false);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Validates a frame header and returns its `(code, payload_len)`. The
/// single source of truth for header checks — the blocking reader
/// ([`read_frame_abortable`]) and the event loop's incremental parser
/// ([`crate::conn::RecvBuf`]) both call it, so a malformed stream fails
/// identically whichever front end reads it.
///
/// # Errors
///
/// [`WireError::BadMagic`], [`WireError::BadVersion`], or
/// [`WireError::TooLarge`] when the claimed payload exceeds
/// [`max_payload`] for the code byte.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let code = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if len as usize > max_payload(code) {
        return Err(WireError::TooLarge(len));
    }
    Ok((code, len as usize))
}

/// Reads one frame. `None` means the peer closed (or `abort` fired) between
/// frames — a clean end of stream.
pub fn read_frame_abortable<R: Read>(
    r: &mut R,
    abort: &dyn Fn() -> bool,
) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header, abort)? {
        return Ok(None);
    }
    let (code, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    if !read_full(r, &mut payload, &|| false)? {
        return Err(WireError::Corrupt("connection closed mid-frame"));
    }
    Ok(Some((code, payload)))
}

/// Reads one frame, blocking until it arrives; `None` on clean close.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    read_frame_abortable(r, &|| false)
}

/// Writes a complete frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, code: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(code, payload))
}

// ---------------------------------------------------------------------------
// Request encode/decode.

impl Request {
    /// The opcode carried in this request's frame header.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Predict(_) => Opcode::Predict,
            Request::Train(_) => Opcode::Train,
            Request::Stats => Opcode::Stats,
            Request::Shutdown => Opcode::Shutdown,
            Request::Snapshot => Opcode::Snapshot,
            Request::Restore(_) => Opcode::Restore,
        }
    }

    /// Encodes the payload (without the frame header).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BatchTooLarge`] when a batch exceeds
    /// [`MAX_BATCH`]: the count prefix is a `u16`, and an unchecked cast
    /// would truncate silently (a 65 536-item batch would claim 0 items).
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        Ok(match self {
            Request::Predict(items) => {
                let count = batch_len(items.len())?;
                let mut out = Vec::with_capacity(2 + items.len() * PREDICT_ITEM_BYTES);
                out.extend_from_slice(&count.to_le_bytes());
                for item in items {
                    out.extend_from_slice(&item.pc.to_le_bytes());
                    out.extend_from_slice(&item.store_seq.to_le_bytes());
                }
                out
            }
            Request::Train(items) => {
                let count = batch_len(items.len())?;
                let mut out = Vec::with_capacity(2 + items.len() * TRAIN_ITEM_BYTES);
                out.extend_from_slice(&count.to_le_bytes());
                for item in items {
                    out.extend_from_slice(&item.ticket.to_le_bytes());
                    out.extend_from_slice(&item.pc.to_le_bytes());
                    put_outcome(&mut out, &item.outcome);
                }
                out
            }
            Request::Stats | Request::Shutdown | Request::Snapshot => Vec::new(),
            Request::Restore(bytes) => {
                if bytes.len() > MAX_SNAPSHOT_FRAME_PAYLOAD {
                    return Err(WireError::TooLarge(u32::MAX));
                }
                bytes.clone()
            }
        })
    }

    /// Assembles the complete request frame.
    ///
    /// # Errors
    ///
    /// As in [`Request::encode_payload`].
    pub fn encode_frame(&self) -> Result<Vec<u8>, WireError> {
        Ok(encode_frame(self.opcode() as u8, &self.encode_payload()?))
    }

    /// Decodes a request from a frame's code byte and payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on an unknown opcode, a length/batch-size
    /// mismatch, or an out-of-range field.
    pub fn decode(code: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        match Opcode::from_code(code)? {
            Opcode::Predict => {
                let count = batch_count(&mut r, PREDICT_ITEM_BYTES)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(PredictItem {
                        pc: r.u64()?,
                        store_seq: r.u64()?,
                    });
                }
                r.finish()?;
                Ok(Request::Predict(items))
            }
            Opcode::Train => {
                let count = batch_count(&mut r, TRAIN_ITEM_BYTES)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(TrainItem {
                        ticket: r.u32()?,
                        pc: r.u64()?,
                        outcome: get_outcome(&mut r)?,
                    });
                }
                r.finish()?;
                Ok(Request::Train(items))
            }
            Opcode::Stats => {
                r.finish()?;
                Ok(Request::Stats)
            }
            Opcode::Shutdown => {
                r.finish()?;
                Ok(Request::Shutdown)
            }
            Opcode::Snapshot => {
                r.finish()?;
                Ok(Request::Snapshot)
            }
            // The snapshot container validates itself (magic, version,
            // checksum) in `mascot_snapshot`; the wire layer only bounds it.
            Opcode::Restore => Ok(Request::Restore(payload.to_vec())),
        }
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode.

impl Response {
    /// The status code carried in this response's frame header.
    pub fn status(&self) -> Status {
        match self {
            Response::Busy => Status::Busy,
            Response::Error(_) => Status::Error,
            _ => Status::Ok,
        }
    }

    /// Encodes the payload (without the frame header).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BatchTooLarge`] when a reply batch exceeds
    /// [`MAX_BATCH`] or a stats report exceeds [`MAX_SHARDS`] — the count
    /// prefixes are narrow, so oversizes must fail rather than truncate.
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        Ok(match self {
            Response::Predict(replies) => {
                let count = batch_len(replies.len())?;
                let mut out = Vec::with_capacity(2 + replies.len() * PREDICT_REPLY_BYTES);
                out.extend_from_slice(&count.to_le_bytes());
                for reply in replies {
                    out.extend_from_slice(&reply.ticket.to_le_bytes());
                    put_prediction(&mut out, reply.prediction);
                }
                out
            }
            Response::Train { applied, stale } => {
                let mut out = Vec::with_capacity(8);
                out.extend_from_slice(&applied.to_le_bytes());
                out.extend_from_slice(&stale.to_le_bytes());
                out
            }
            Response::Stats(report) => {
                if report.shards.len() > MAX_SHARDS {
                    return Err(WireError::BatchTooLarge(report.shards.len()));
                }
                let mut out = Vec::with_capacity(4 + report.shards.len() * SHARD_STATS_BYTES);
                out.extend_from_slice(&(report.shards.len() as u32).to_le_bytes());
                for s in &report.shards {
                    for field in [
                        s.requests,
                        s.predicts,
                        s.trains,
                        s.stale_trains,
                        s.evicted_pending,
                        s.missed_dependencies,
                        s.false_dependencies,
                        s.false_bypasses,
                        s.batches,
                        s.rejected_full,
                        s.service_samples,
                        s.service_p50_ns,
                        s.service_p99_ns,
                        s.restored_entries,
                        s.snapshot_age_s,
                        s.restarts,
                    ] {
                        out.extend_from_slice(&field.to_le_bytes());
                    }
                }
                out
            }
            Response::Shutdown { served } => served.to_le_bytes().to_vec(),
            Response::Snapshot(bytes) => {
                if bytes.len() > MAX_SNAPSHOT_FRAME_PAYLOAD {
                    return Err(WireError::TooLarge(u32::MAX));
                }
                bytes.clone()
            }
            Response::Restore { restored_entries } => restored_entries.to_le_bytes().to_vec(),
            Response::Busy => Vec::new(),
            Response::Error(msg) => msg.as_bytes().to_vec(),
        })
    }

    /// Assembles the complete response frame.
    ///
    /// # Errors
    ///
    /// As in [`Response::encode_payload`].
    pub fn encode_frame(&self) -> Result<Vec<u8>, WireError> {
        Ok(encode_frame(self.status() as u8, &self.encode_payload()?))
    }

    /// Decodes a response to a request with opcode `for_op`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on an unknown status, a length/batch-size
    /// mismatch, or an out-of-range field.
    pub fn decode(for_op: Opcode, code: u8, payload: &[u8]) -> Result<Response, WireError> {
        let status = match code {
            0 => Status::Ok,
            1 => Status::Busy,
            2 => Status::Error,
            other => return Err(WireError::BadStatus(other)),
        };
        let mut r = Reader::new(payload);
        match status {
            Status::Busy => {
                r.finish()?;
                Ok(Response::Busy)
            }
            Status::Error => Ok(Response::Error(
                String::from_utf8(payload.to_vec())
                    .map_err(|_| WireError::Corrupt("error message is not UTF-8"))?,
            )),
            Status::Ok => match for_op {
                Opcode::Predict => {
                    let count = batch_count(&mut r, PREDICT_REPLY_BYTES)?;
                    let mut replies = Vec::with_capacity(count);
                    for _ in 0..count {
                        let ticket = r.u32()?;
                        let tag = r.u8()?;
                        let dist = r.u8()?;
                        replies.push(PredictReply {
                            ticket,
                            prediction: get_prediction(tag, dist)?,
                        });
                    }
                    r.finish()?;
                    Ok(Response::Predict(replies))
                }
                Opcode::Train => {
                    let applied = r.u32()?;
                    let stale = r.u32()?;
                    r.finish()?;
                    Ok(Response::Train { applied, stale })
                }
                Opcode::Stats => {
                    let count = r.u32()? as usize;
                    if count > MAX_SHARDS {
                        return Err(WireError::Corrupt("shard count exceeds limit"));
                    }
                    if r.buf.len() - r.pos != count * SHARD_STATS_BYTES {
                        return Err(WireError::Corrupt("stats length mismatch"));
                    }
                    let mut shards = Vec::with_capacity(count);
                    for _ in 0..count {
                        shards.push(ShardStats {
                            requests: r.u64()?,
                            predicts: r.u64()?,
                            trains: r.u64()?,
                            stale_trains: r.u64()?,
                            evicted_pending: r.u64()?,
                            missed_dependencies: r.u64()?,
                            false_dependencies: r.u64()?,
                            false_bypasses: r.u64()?,
                            batches: r.u64()?,
                            rejected_full: r.u64()?,
                            service_samples: r.u64()?,
                            service_p50_ns: r.u64()?,
                            service_p99_ns: r.u64()?,
                            restored_entries: r.u64()?,
                            snapshot_age_s: r.u64()?,
                            restarts: r.u64()?,
                        });
                    }
                    r.finish()?;
                    Ok(Response::Stats(StatsReport { shards }))
                }
                Opcode::Shutdown => {
                    let served = r.u64()?;
                    r.finish()?;
                    Ok(Response::Shutdown { served })
                }
                Opcode::Snapshot => Ok(Response::Snapshot(payload.to_vec())),
                Opcode::Restore => {
                    let restored_entries = r.u64()?;
                    r.finish()?;
                    Ok(Response::Restore { restored_entries })
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(n: u32) -> StoreDistance {
        StoreDistance::new(n).unwrap()
    }

    fn roundtrip_request(req: Request) -> Request {
        let frame = req.encode_frame().unwrap();
        let (code, payload) = read_frame(&mut frame.as_slice()).unwrap().unwrap();
        Request::decode(code, &payload).unwrap()
    }

    fn roundtrip_response(for_op: Opcode, resp: Response) -> Response {
        let frame = resp.encode_frame().unwrap();
        let (code, payload) = read_frame(&mut frame.as_slice()).unwrap().unwrap();
        Response::decode(for_op, code, &payload).unwrap()
    }

    #[test]
    fn predict_roundtrip() {
        let req = Request::Predict(vec![
            PredictItem { pc: 0x1000, store_seq: 7 },
            PredictItem { pc: u64::MAX, store_seq: 0 },
        ]);
        assert_eq!(roundtrip_request(req.clone()), req);
        let resp = Response::Predict(vec![
            PredictReply { ticket: 1, prediction: MemDepPrediction::NoDependence },
            PredictReply { ticket: 2, prediction: MemDepPrediction::Dependence { distance: dist(1) } },
            PredictReply { ticket: u32::MAX, prediction: MemDepPrediction::Bypass { distance: dist(127) } },
        ]);
        assert_eq!(roundtrip_response(Opcode::Predict, resp.clone()), resp);
    }

    #[test]
    fn train_roundtrip() {
        let req = Request::Train(vec![
            TrainItem { ticket: 9, pc: 0x2000, outcome: LoadOutcome::independent() },
            TrainItem {
                ticket: 10,
                pc: 0x2008,
                outcome: LoadOutcome::dependent(ObservedDependence {
                    distance: dist(42),
                    class: BypassClass::NoOffset,
                    store_pc: 0x1ff0,
                    branches_between: 3,
                }),
            },
        ]);
        assert_eq!(roundtrip_request(req.clone()), req);
        let resp = Response::Train { applied: 1, stale: 1 };
        assert_eq!(roundtrip_response(Opcode::Train, resp.clone()), resp);
    }

    #[test]
    fn stats_and_shutdown_roundtrip() {
        assert_eq!(roundtrip_request(Request::Stats), Request::Stats);
        assert_eq!(roundtrip_request(Request::Shutdown), Request::Shutdown);
        let report = StatsReport {
            shards: vec![
                ShardStats { requests: 10, predicts: 8, trains: 2, ..Default::default() },
                ShardStats { service_p50_ns: 512, service_p99_ns: 4096, ..Default::default() },
            ],
        };
        let resp = roundtrip_response(Opcode::Stats, Response::Stats(report.clone()));
        assert_eq!(resp, Response::Stats(report.clone()));
        assert_eq!(report.total_requests(), 10);
        assert_eq!(report.total_predicts(), 8);
        let resp = roundtrip_response(Opcode::Shutdown, Response::Shutdown { served: 12345 });
        assert_eq!(resp, Response::Shutdown { served: 12345 });
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        assert_eq!(roundtrip_request(Request::Snapshot), Request::Snapshot);
        let blob = vec![0xAB_u8; 4096];
        assert_eq!(
            roundtrip_request(Request::Restore(blob.clone())),
            Request::Restore(blob.clone())
        );
        assert_eq!(
            roundtrip_response(Opcode::Snapshot, Response::Snapshot(blob.clone())),
            Response::Snapshot(blob)
        );
        assert_eq!(
            roundtrip_response(
                Opcode::Restore,
                Response::Restore {
                    restored_entries: 777
                }
            ),
            Response::Restore {
                restored_entries: 777
            }
        );
        // Snapshot frames get the larger cap; a predict frame does not.
        assert_eq!(max_payload(Opcode::Restore as u8), MAX_SNAPSHOT_FRAME_PAYLOAD);
        assert_eq!(max_payload(Status::Ok as u8), MAX_SNAPSHOT_FRAME_PAYLOAD);
        assert_eq!(max_payload(Opcode::Predict as u8), MAX_FRAME_PAYLOAD);
        assert!(matches!(
            Request::Restore(vec![0; MAX_SNAPSHOT_FRAME_PAYLOAD + 1]).encode_payload(),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn warm_start_counters_roundtrip() {
        let report = StatsReport {
            shards: vec![ShardStats {
                requests: 5,
                restored_entries: 1234,
                snapshot_age_s: 60,
                restarts: 3,
                ..Default::default()
            }],
        };
        let resp = roundtrip_response(Opcode::Stats, Response::Stats(report.clone()));
        assert_eq!(resp, Response::Stats(report.clone()));
        assert_eq!(report.total_restored(), 1234);
    }

    /// Version-3 fields: the pending-eviction counter and the per-shard
    /// misprediction taxonomy must survive the wire and feed the report
    /// helpers.
    #[test]
    fn pollution_taxonomy_roundtrip() {
        let report = StatsReport {
            shards: vec![
                ShardStats {
                    evicted_pending: 7,
                    missed_dependencies: 3,
                    false_dependencies: 2,
                    false_bypasses: 1,
                    ..Default::default()
                },
                ShardStats {
                    false_bypasses: 4,
                    ..Default::default()
                },
            ],
        };
        let resp = roundtrip_response(Opcode::Stats, Response::Stats(report.clone()));
        assert_eq!(resp, Response::Stats(report.clone()));
        assert_eq!(report.total_evicted_pending(), 7);
        assert_eq!(report.total_mispredictions(), 10);
    }

    /// Version-1 peers must be rejected outright: v2 changed the
    /// `ShardStats` layout, so parsing a v1 stats frame as v2 would read
    /// garbage rather than fail.
    #[test]
    fn rejects_version_one_frames() {
        let mut frame = Request::Stats.encode_frame().unwrap();
        frame[4] = 1;
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(WireError::BadVersion(1))
        ));
    }

    #[test]
    fn busy_and_error_roundtrip() {
        assert_eq!(roundtrip_response(Opcode::Predict, Response::Busy), Response::Busy);
        let resp = roundtrip_response(Opcode::Train, Response::Error("bad frame".into()));
        assert_eq!(resp, Response::Error("bad frame".into()));
    }

    #[test]
    fn rejects_bad_magic_version_opcode_status() {
        let mut frame = Request::Stats.encode_frame().unwrap();
        frame[0] = b'X';
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(WireError::BadMagic)
        ));
        let mut frame = Request::Stats.encode_frame().unwrap();
        frame[4] = 99;
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(WireError::BadVersion(99))
        ));
        assert!(matches!(Request::decode(77, &[]), Err(WireError::BadOpcode(77))));
        assert!(matches!(
            Response::decode(Opcode::Stats, 9, &[]),
            Err(WireError::BadStatus(9))
        ));
    }

    #[test]
    fn rejects_oversized_and_mismatched_batches() {
        // Claimed batch larger than MAX_BATCH.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(Request::decode(Opcode::Predict as u8, &payload).is_err());
        // Count does not match the payload length.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(&[0u8; PREDICT_ITEM_BYTES]); // only one item
        assert!(Request::decode(Opcode::Predict as u8, &payload).is_err());
        // Oversized frame length in the header.
        let mut frame = encode_frame(Opcode::Stats as u8, &[]);
        frame[6..10].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(WireError::TooLarge(_))
        ));
    }

    /// The count prefix is a `u16`. Before the encoder became fallible a
    /// 65 535-item batch encoded a full prefix and a 65 536-item batch
    /// wrapped to a claimed count of 0 — both silently. Every oversize must
    /// now fail at encode time, before a byte reaches the stream.
    #[test]
    fn encode_rejects_oversized_batches() {
        let item = PredictItem { pc: 0, store_seq: 0 };
        assert!(Request::Predict(vec![item; MAX_BATCH]).encode_frame().is_ok());
        for n in [MAX_BATCH + 1, 65_535, 65_536] {
            match Request::Predict(vec![item; n]).encode_payload() {
                Err(WireError::BatchTooLarge(m)) => assert_eq!(m, n),
                other => panic!("expected BatchTooLarge for {n} items, got {other:?}"),
            }
        }
        let train = TrainItem {
            ticket: 0,
            pc: 0,
            outcome: LoadOutcome::independent(),
        };
        assert!(matches!(
            Request::Train(vec![train; 65_535]).encode_payload(),
            Err(WireError::BatchTooLarge(65_535))
        ));
        let reply = PredictReply {
            ticket: 0,
            prediction: MemDepPrediction::NoDependence,
        };
        assert!(Response::Predict(vec![reply; MAX_BATCH]).encode_payload().is_ok());
        assert!(matches!(
            Response::Predict(vec![reply; 65_536]).encode_payload(),
            Err(WireError::BatchTooLarge(65_536))
        ));
        let report = StatsReport {
            shards: vec![ShardStats::default(); MAX_SHARDS + 1],
        };
        assert!(matches!(
            Response::Stats(report).encode_payload(),
            Err(WireError::BatchTooLarge(_))
        ));
    }

    #[test]
    fn rejects_truncation_and_close() {
        let frame = Request::Predict(vec![PredictItem { pc: 1, store_seq: 2 }])
            .encode_frame()
            .unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3, frame.len() - 1] {
            assert!(
                read_frame(&mut &frame[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Clean close between frames is Ok(None), not an error.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn rejects_corrupt_prediction_fields() {
        assert!(get_prediction(3, 0).is_err());
        assert!(get_prediction(1, 0).is_err()); // dependence needs distance >= 1
        assert!(get_prediction(1, 200).is_err()); // distance > 127
        assert!(get_prediction(0, 5).is_err()); // no-dependence with distance
        assert!(get_prediction(2, 127).is_ok());
    }

    /// `parse_header` is the shared validator for both front ends; check
    /// it standalone (the blocking-reader tests above exercise it via
    /// `read_frame`).
    #[test]
    fn parse_header_matches_reader_checks() {
        let frame = Request::Snapshot.encode_frame().unwrap();
        let header: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
        assert_eq!(parse_header(&header).unwrap(), (Opcode::Snapshot as u8, 0));
        let mut bad = header;
        bad[0] = b'Z';
        assert!(matches!(parse_header(&bad), Err(WireError::BadMagic)));
        let mut bad = header;
        bad[4] = 1;
        assert!(matches!(parse_header(&bad), Err(WireError::BadVersion(1))));
        // The per-code payload cap: a predict frame may not claim a
        // snapshot-sized payload, but a restore frame may.
        let mut big = header;
        big[5] = Opcode::Predict as u8;
        big[6..10].copy_from_slice(&((MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes());
        assert!(matches!(parse_header(&big), Err(WireError::TooLarge(_))));
        big[5] = Opcode::Restore as u8;
        assert_eq!(
            parse_header(&big).unwrap(),
            (Opcode::Restore as u8, MAX_FRAME_PAYLOAD + 1)
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::BadMagic.to_string().contains("magic"));
        assert!(WireError::BadVersion(7).to_string().contains('7'));
        assert!(WireError::TooLarge(9).to_string().contains("exceeds"));
        assert!(WireError::Corrupt("x").to_string().contains('x'));
    }
}
