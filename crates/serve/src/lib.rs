//! `mascot-serve`: a sharded, batched prediction service for MASCOT
//! predictors over a binary TCP wire protocol.
//!
//! The crate turns any [`mascot_predictors::PredictorKind`] into a
//! network service:
//!
//! * [`wire`] — the versioned `MSRV` frame format: Predict / Train /
//!   Stats / Shutdown opcodes carrying length-prefixed micro-batches of
//!   fixed-size items, validated arithmetically before allocation.
//! * [`shard`] — the worker pool. Each OS thread owns one predictor
//!   instance; requests are routed by a hash of the load PC through
//!   bounded queues (full queue → `Busy`, never an unbounded buffer), and
//!   workers drain several jobs per queue pop to amortise wakeups.
//!   Predict→train metadata stays server-side in a per-shard ticket slab.
//! * [`poll`] — a level-triggered `epoll` wrapper and an `eventfd` waker
//!   over raw syscalls (the workspace builds offline; no I/O crates).
//! * [`conn`] — per-connection receive/send buffers: incremental frame
//!   reassembly with zero-copy payload access, partial-write resumption,
//!   and the backpressure thresholds.
//! * [`server`] — the readiness-driven event loop: nonblocking accept,
//!   per-connection state machines over [`conn`], scatter/gather dispatch
//!   into the shard queues with in-order pipelined responses, and graceful
//!   drain on `Shutdown` (DESIGN.md §11).
//! * [`client`] — a small synchronous client used by the load generator
//!   and the integration tests.
//! * [`replay`] — feeds an `.mtrc` trace through the pool as training
//!   traffic (`mascotd --replay`).
//! * [`metrics`] — lock-free per-shard counters and a fixed-bucket
//!   service-time histogram behind the `Stats` opcode.
//!
//! Binaries: `mascotd` (the server), `mascot-loadgen` (closed- and
//! open-loop benchmark client; maintains `BENCH_serve.json`), and
//! `mascot-router` (consistent-hash front for a multi-node cluster with
//! health checks and replica failover).
//!
//! Version 2 of the wire protocol adds `Snapshot`/`Restore`: the full
//! predictor state of every shard round-trips through the
//! `mascot_snapshot` container format, enabling warm restarts
//! (`mascotd --snapshot-dir`) and N→M resharding (DESIGN.md §10).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod conn;
pub mod metrics;
pub mod poll;
pub mod replay;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{Client, Served};
pub use replay::{replay_trace, ReplayReport};
pub use server::{predictors_from_snapshot, unix_now_s, ServeConfig, Server};
pub use shard::{ShardPool, ShardPoolConfig};
