//! Minimal readiness polling over raw Linux syscalls: a level-triggered
//! `epoll` wrapper plus an `eventfd`-based cross-thread waker.
//!
//! The workspace builds offline with no crates.io I/O dependencies, so the
//! event loop talks to the kernel directly: `std` already links the C
//! library, and the five symbols below (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, plus `read`/`write`/`close` on the raw fds)
//! are all a readiness loop needs. Everything is level-triggered on
//! purpose — a connection whose buffered input was only partially consumed
//! is simply re-reported on the next wait, which is what gives the server
//! its round-robin fairness without a user-space ready list (DESIGN.md
//! §11).
//!
//! [`Waker`] wraps a non-blocking `eventfd` registered with the poller
//! like any connection: shard workers write 8 bytes after posting a
//! completion, which makes a parked `epoll_wait` return. Wakes coalesce
//! (an eventfd is a counter, not a queue), so a storm of completions costs
//! one wakeup.

use std::io;
use std::os::fd::RawFd;

const EPOLL_CLOEXEC: i32 = 0x8_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x8_0000;

/// Kernel ABI: on x86_64 `struct epoll_event` is packed (12 bytes); other
/// architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or the peer half-closed — a read will observe it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup; the owner should read to collect the error.
    pub hangup: bool,
}

/// A level-triggered `epoll` instance.
pub struct Poller {
    epfd: RawFd,
    raw: Vec<EpollEvent>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("epfd", &self.epfd).finish()
    }
}

/// Events returned per `wait` call; more ready fds simply surface on the
/// next call (level-triggered), and the kernel rotates its ready list, so
/// no fd can shadow the others.
const MAX_EVENTS: usize = 1024;

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd,
            raw: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
        })
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Registers `fd` under `token` with the given interests.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: Self::interest(readable, writable),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
    }

    /// Changes the interests of an already registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: Self::interest(readable, writable),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits for readiness, appending into `out` (cleared first).
    /// `timeout_ms < 0` blocks indefinitely; `0` polls. Retries on EINTR.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let n = loop {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.raw.as_mut_ptr(),
                    self.raw.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &self.raw[..n] {
            let events = raw.events; // copy out of the packed struct
            out.push(Event {
                token: raw.data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup for a parked [`Poller`], backed by a non-blocking
/// `eventfd`. Register [`Waker::fd`] with the poller; any thread may call
/// [`Waker::wake`]; the poller's owner calls [`Waker::drain`] when the
/// token fires.
pub struct Waker {
    fd: RawFd,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").field("fd", &self.fd).finish()
    }
}

impl Waker {
    /// Creates the eventfd.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with a [`Poller`] (readable interest).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the poller. Never blocks: an eventfd at `u64::MAX - 1` would
    /// reject the write with EAGAIN, which only means a wake is already
    /// pending — exactly the desired state.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter so the next [`Poller::wait`] can park again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no connection yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn stream_readable_and_writable_interests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        // Writable only: a fresh socket's send buffer is empty.
        poller.add(server.as_raw_fd(), 1, false, true).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable && !e.readable));
        // Switch to readable; it fires once the peer sends.
        poller.modify(server.as_raw_fd(), 1, true, false).unwrap();
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        poller.delete(server.as_raw_fd());
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deleted fd must not report");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(waker.fd(), 42, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
        waker.wake();
        waker.wake(); // wakes coalesce
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained waker must park again");
    }
}
