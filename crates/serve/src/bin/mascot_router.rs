//! `mascot-router` — a consistent-hash front for a multi-node `mascotd`
//! cluster, with health checks, busy-aware retry, and replica failover.
//!
//! ```text
//! mascot-router [--addr HOST:PORT] --node HOST:PORT [--node HOST:PORT ...]
//!               [--replica HOST:PORT] [--port-file PATH]
//!               [--health-interval-ms N]
//! ```
//!
//! The router speaks the same `MSRV` wire protocol as `mascotd` on both
//! sides, so any client (the load generator, the integration tests) can
//! point at it unchanged. Each `Predict`/`Train` batch is split by a hash
//! of the load PC into per-node sub-batches, forwarded, and reassembled in
//! request order. The PC→node map is *static* over the configured primary
//! list — a node that dies does not reshuffle the survivors' slices
//! (their predictor state is PC-local); only the dead node's slice fails
//! over to the `--replica`, which starts cold and warms up from the
//! redirected training traffic.
//!
//! Failure handling, in order:
//!
//! * `Busy` from a node: retried with bounded exponential backoff; if the
//!   node stays busy the whole frame is answered `Busy` (the client
//!   already handles backpressure).
//! * I/O error (or connect failure) to a node: the node is marked down —
//!   sticky, because its state diverges from the replica's the moment
//!   traffic is redirected — and the sub-batch is re-sent to the replica,
//!   so the client sees a complete answer and loses nothing.
//! * A background thread health-checks every live node each
//!   `--health-interval-ms` (default 200) with a `Stats` ping, so nodes
//!   that die between requests are caught early.
//!
//! `Stats` through the router reports router-side per-backend counters
//! (one pseudo-shard per primary plus one for the replica): the numbers
//! survive a killed node, which per-node counters would not. `Shutdown`
//! broadcasts to every reachable backend, sums their served counts, then
//! stops the router. `Snapshot`/`Restore` are per-node operations and are
//! rejected with an error directing the caller at a node.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mascot_serve::wire::{
    self, PredictItem, PredictReply, Request, Response, ShardStats, StatsReport, TrainItem,
};
use mascot_serve::Client;

/// Attempts per sub-batch before a persistent `Busy` is surfaced.
const BUSY_RETRIES: u32 = 25;
/// Base backoff between busy retries (doubles, capped at 2^8 × base).
const BUSY_BACKOFF: Duration = Duration::from_micros(100);

/// PC→node multiplier. Deliberately a different odd constant from the
/// shard router inside `mascotd` (`shard.rs`), so the node index and the
/// shard index of a PC stay decorrelated: with the same constant and
/// `nodes == shards`, every PC routed to node `i` would also land on
/// shard `i` of that node, idling the other shards.
const NODE_HASH_MUL: u64 = 0xd1b5_4a32_d192_ed03;

/// Which backend a PC belongs to.
fn node_of(pc: u64, nodes: usize) -> usize {
    ((pc.wrapping_mul(NODE_HASH_MUL) >> 32) % nodes as u64) as usize
}

struct Args {
    addr: String,
    nodes: Vec<String>,
    replica: Option<String>,
    port_file: Option<String>,
    health_interval: Duration,
}

fn usage() -> &'static str {
    "usage: mascot-router [--addr HOST:PORT] --node HOST:PORT [--node HOST:PORT ...]\n\
    \x20                    [--replica HOST:PORT] [--port-file PATH]\n\
    \x20                    [--health-interval-ms N]\n\
    Routes MSRV predict/train traffic across the --node list by a hash of\n\
    the load PC. A node that fails is marked down and its slice of the PC\n\
    space fails over to --replica. --port-file writes the bound address\n\
    once the router accepts connections."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        nodes: Vec::new(),
        replica: None,
        port_file: None,
        health_interval: Duration::from_millis(200),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--node" => args.nodes.push(value("--node")?),
            "--replica" => args.replica = Some(value("--replica")?),
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--health-interval-ms" => {
                let ms = value("--health-interval-ms")?;
                let ms = ms
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--health-interval-ms must be positive, got {ms:?}"))?;
                args.health_interval = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.nodes.is_empty() {
        return Err("at least one --node is required".to_string());
    }
    Ok(args)
}

/// Router-side per-backend counters; reported as one pseudo-shard each so
/// the aggregate survives a killed node.
#[derive(Default)]
struct BackendCounters {
    requests: AtomicU64,
    predicts: AtomicU64,
    trains: AtomicU64,
    rejected: AtomicU64,
}

/// Shared cluster state: the static node list, sticky down flags, and the
/// counters behind the router's `Stats` response.
struct Cluster {
    node_addrs: Vec<String>,
    down: Vec<AtomicBool>,
    replica_addr: Option<String>,
    /// One per primary, plus one trailing slot for the replica.
    counters: Vec<BackendCounters>,
    failovers: AtomicU64,
    shutting_down: AtomicBool,
}

impl Cluster {
    fn new(args: &Args) -> Cluster {
        let n = args.nodes.len();
        Cluster {
            node_addrs: args.nodes.clone(),
            down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            replica_addr: args.replica.clone(),
            counters: (0..n + 1).map(|_| BackendCounters::default()).collect(),
            failovers: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// Marks a node down; true if this call did the transition (log once).
    fn mark_down(&self, node: usize) -> bool {
        !self.down[node].swap(true, Ordering::Relaxed)
    }

    /// The counter slot serving `backend` (replica = trailing slot).
    fn counters_of(&self, backend: Backend) -> &BackendCounters {
        match backend {
            Backend::Primary(i) => &self.counters[i],
            Backend::Replica => &self.counters[self.node_addrs.len()],
        }
    }
}

/// Who ended up serving a sub-batch.
#[derive(Clone, Copy)]
enum Backend {
    Primary(usize),
    Replica,
}

/// Outcome of forwarding one sub-batch.
enum Forwarded {
    Ok(Response, Backend),
    Busy,
    Failed(String),
}

/// Per-connection upstream clients, connected lazily. Each router
/// connection keeps its own, so one slow downstream client cannot
/// head-of-line-block another's forwards.
struct Upstreams {
    primaries: Vec<Option<Client>>,
    replica: Option<Client>,
}

impl Upstreams {
    fn new(n: usize) -> Upstreams {
        Upstreams {
            primaries: (0..n).map(|_| None).collect(),
            replica: None,
        }
    }
}

/// Sends `req` on `slot` (connecting to `addr` first if needed), retrying
/// bounded times while the backend answers `Busy`. An I/O error drops the
/// cached connection and is returned for the caller's failover decision.
fn send_retrying(
    slot: &mut Option<Client>,
    addr: &str,
    req: &Request,
) -> Result<Response, String> {
    for attempt in 0u32..BUSY_RETRIES {
        if slot.is_none() {
            *slot = Some(Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
        }
        let client = slot.as_mut().expect("just connected");
        match client.request(req) {
            Ok(Response::Busy) => {
                std::thread::sleep(BUSY_BACKOFF * (1 << attempt.min(8)));
            }
            Ok(resp) => return Ok(resp),
            Err(e) => {
                *slot = None;
                return Err(format!("{addr}: {e}"));
            }
        }
    }
    Ok(Response::Busy)
}

/// Forwards a sub-batch to its primary, failing over to the replica when
/// the primary is down or dies mid-request.
fn forward(cluster: &Cluster, ups: &mut Upstreams, node: usize, req: &Request) -> Forwarded {
    if !cluster.down[node].load(Ordering::Relaxed) {
        let addr = cluster.node_addrs[node].clone();
        match send_retrying(&mut ups.primaries[node], &addr, req) {
            Ok(Response::Busy) => return Forwarded::Busy,
            Ok(resp) => return Forwarded::Ok(resp, Backend::Primary(node)),
            Err(e) => {
                if cluster.mark_down(node) {
                    eprintln!("mascot-router: node {node} ({addr}) marked down: {e}");
                }
                cluster.failovers.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let Some(replica_addr) = cluster.replica_addr.clone() else {
        return Forwarded::Failed(format!(
            "node {node} ({}) is down and no --replica is configured",
            cluster.node_addrs[node]
        ));
    };
    match send_retrying(&mut ups.replica, &replica_addr, req) {
        Ok(Response::Busy) => Forwarded::Busy,
        Ok(resp) => Forwarded::Ok(resp, Backend::Replica),
        Err(e) => Forwarded::Failed(format!("replica {e} (after node {node} failed)")),
    }
}

/// Splits a predict batch by PC, forwards each sub-batch, and reassembles
/// the replies in request order.
fn route_predict(cluster: &Cluster, ups: &mut Upstreams, items: &[PredictItem]) -> Response {
    let n = cluster.node_addrs.len();
    let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        by_node[node_of(item.pc, n)].push(i);
    }
    let mut out: Vec<Option<PredictReply>> = vec![None; items.len()];
    for (node, idxs) in by_node.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let sub: Vec<PredictItem> = idxs.iter().map(|&i| items[i]).collect();
        match forward(cluster, ups, node, &Request::Predict(sub)) {
            Forwarded::Ok(Response::Predict(replies), backend)
                if replies.len() == idxs.len() =>
            {
                let counters = cluster.counters_of(backend);
                counters.requests.fetch_add(idxs.len() as u64, Ordering::Relaxed);
                counters.predicts.fetch_add(idxs.len() as u64, Ordering::Relaxed);
                for (&i, reply) in idxs.iter().zip(&replies) {
                    out[i] = Some(*reply);
                }
            }
            Forwarded::Ok(..) => {
                return Response::Error(format!("node {node} answered predict with a mismatch"));
            }
            Forwarded::Busy => {
                cluster.counters[node]
                    .rejected
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                return Response::Busy;
            }
            Forwarded::Failed(e) => return Response::Error(format!("predict failed: {e}")),
        }
    }
    Response::Predict(out.into_iter().map(|r| r.expect("every index filled")).collect())
}

/// Splits a train batch by PC and sums the per-node apply/stale counts.
/// Tickets issued by a node that has since failed over land on the replica
/// and count as stale — trained state is lost with the node, requests are
/// not.
fn route_train(cluster: &Cluster, ups: &mut Upstreams, items: &[TrainItem]) -> Response {
    let n = cluster.node_addrs.len();
    let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        by_node[node_of(item.pc, n)].push(i);
    }
    let (mut applied, mut stale) = (0u32, 0u32);
    for (node, idxs) in by_node.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let sub: Vec<TrainItem> = idxs.iter().map(|&i| items[i]).collect();
        match forward(cluster, ups, node, &Request::Train(sub)) {
            Forwarded::Ok(Response::Train { applied: a, stale: s }, backend) => {
                let counters = cluster.counters_of(backend);
                counters.requests.fetch_add(idxs.len() as u64, Ordering::Relaxed);
                counters.trains.fetch_add(u64::from(a), Ordering::Relaxed);
                applied += a;
                stale += s;
            }
            Forwarded::Ok(..) => {
                return Response::Error(format!("node {node} answered train with a mismatch"));
            }
            Forwarded::Busy => {
                cluster.counters[node]
                    .rejected
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                return Response::Busy;
            }
            Forwarded::Failed(e) => return Response::Error(format!("train failed: {e}")),
        }
    }
    Response::Train { applied, stale }
}

/// The router's own `Stats`: one pseudo-shard per primary plus one for the
/// replica, from router-side counters (they survive a killed node).
fn router_stats(cluster: &Cluster) -> Response {
    let shards = cluster
        .counters
        .iter()
        .map(|c| ShardStats {
            requests: c.requests.load(Ordering::Relaxed),
            predicts: c.predicts.load(Ordering::Relaxed),
            trains: c.trains.load(Ordering::Relaxed),
            rejected_full: c.rejected.load(Ordering::Relaxed),
            ..ShardStats::default()
        })
        .collect();
    Response::Stats(StatsReport { shards })
}

/// Broadcasts `Shutdown` to every reachable backend, sums the served
/// counts, and flags the router itself to stop accepting.
fn broadcast_shutdown(cluster: &Cluster, ups: &mut Upstreams) -> Response {
    let mut served = 0u64;
    let mut reached = 0usize;
    let replica_slot = cluster.replica_addr.iter().map(|a| (a.clone(), usize::MAX));
    let targets: Vec<(String, usize)> = cluster
        .node_addrs
        .iter()
        .enumerate()
        .map(|(i, a)| (a.clone(), i))
        .chain(replica_slot)
        .collect();
    for (addr, idx) in targets {
        if idx != usize::MAX && cluster.down[idx].load(Ordering::Relaxed) {
            continue;
        }
        let slot = if idx == usize::MAX {
            &mut ups.replica
        } else {
            &mut ups.primaries[idx]
        };
        match send_retrying(slot, &addr, &Request::Shutdown) {
            Ok(Response::Shutdown { served: s }) => {
                served += s;
                reached += 1;
            }
            Ok(_) | Err(_) => {
                // A backend that dies during shutdown has nothing left to
                // drain; the router still stops cleanly.
            }
        }
    }
    eprintln!("mascot-router: shutdown broadcast reached {reached} backends");
    cluster.shutting_down.store(true, Ordering::Relaxed);
    Response::Shutdown { served }
}

/// Serves one downstream connection until it closes or the router stops.
fn handle_conn(mut stream: TcpStream, cluster: &Cluster) {
    let _ = stream.set_nodelay(true);
    let mut ups = Upstreams::new(cluster.node_addrs.len());
    loop {
        let (code, payload) = match wire::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let resp = match Request::decode(code, &payload) {
            // A decode failure consumed a complete frame, so the stream is
            // still in sync and the connection can keep going.
            Err(e) => Response::Error(format!("bad request: {e}")),
            Ok(Request::Predict(items)) => route_predict(cluster, &mut ups, &items),
            Ok(Request::Train(items)) => route_train(cluster, &mut ups, &items),
            Ok(Request::Stats) => router_stats(cluster),
            Ok(Request::Shutdown) => broadcast_shutdown(cluster, &mut ups),
            Ok(Request::Snapshot | Request::Restore(_)) => Response::Error(
                "snapshot/restore are per-node operations: address a mascotd directly"
                    .to_string(),
            ),
        };
        let frame = match resp.encode_frame() {
            Ok(f) => f,
            Err(_) => return,
        };
        if stream.write_all(&frame).is_err() {
            return;
        }
        if cluster.shutting_down.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Pings every live node with `Stats` each interval; a node that fails the
/// ping is marked down so the next request fails over without paying for
/// the discovery itself.
fn health_loop(cluster: &Cluster, interval: Duration) {
    while !cluster.shutting_down.load(Ordering::Relaxed) {
        for (node, addr) in cluster.node_addrs.iter().enumerate() {
            if cluster.down[node].load(Ordering::Relaxed) {
                continue;
            }
            let healthy = Client::connect(addr)
                .ok()
                .and_then(|mut c| c.stats().ok())
                .is_some();
            if !healthy && cluster.mark_down(node) {
                eprintln!("mascot-router: health check: node {node} ({addr}) marked down");
            }
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mascot-router: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cluster = Arc::new(Cluster::new(&args));

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mascot-router: failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mascot-router: local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        eprintln!("mascot-router: cannot set the listener non-blocking");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "mascot-router: {} nodes{} on {addr}",
        cluster.node_addrs.len(),
        if cluster.replica_addr.is_some() {
            " + replica"
        } else {
            ""
        }
    );
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("mascot-router: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let health = {
        let cluster = Arc::clone(&cluster);
        let interval = args.health_interval;
        std::thread::spawn(move || health_loop(&cluster, interval))
    };

    let mut conns = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let cluster = Arc::clone(&cluster);
                conns.push(std::thread::spawn(move || handle_conn(stream, &cluster)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if cluster.shutting_down.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("mascot-router: accept failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for conn in conns {
        let _ = conn.join();
    }
    let _ = health.join();

    let routed: u64 = cluster
        .counters
        .iter()
        .map(|c| c.requests.load(Ordering::Relaxed))
        .sum();
    let down = cluster
        .down
        .iter()
        .filter(|d| d.load(Ordering::Relaxed))
        .count();
    eprintln!(
        "mascot-router: stopped; routed {routed} items, {} failovers, {down} nodes down",
        cluster.failovers.load(Ordering::Relaxed)
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_map_is_total_and_stable() {
        for nodes in 1..=5 {
            for pc in (0x40_0000u64..0x40_1000).step_by(4) {
                let n = node_of(pc, nodes);
                assert!(n < nodes);
                assert_eq!(n, node_of(pc, nodes), "stable for the same pc");
            }
        }
    }

    #[test]
    fn node_map_spreads_across_nodes() {
        let nodes = 3;
        let mut hits = vec![0u32; nodes];
        for i in 0..4096u64 {
            hits[node_of(0x40_0000 + i * 4, nodes)] += 1;
        }
        for (node, &h) in hits.iter().enumerate() {
            assert!(h > 4096 / 10, "node {node} got only {h}/4096 PCs");
        }
    }
}
