//! `mascot-loadgen` — closed- and open-loop benchmark client for `mascotd`.
//!
//! ```text
//! mascot-loadgen [--addr HOST:PORT | --inproc] [--predictor KIND]
//!                [--shards N] [--threads N] [--batch N]
//!                [--duration-ms N] [--train-every N] [--open-loop QPS]
//!                [--smoke] [--check]
//!                [--fingerprint-file PATH] [--shutdown]
//! ```
//!
//! Each client thread owns one connection and issues predict batches of
//! synthetic loads; every `--train-every`th batch is followed by a train
//! request quoting the returned tickets, so the server sees the mixed
//! predict/train traffic a simulator frontend would generate. `Busy`
//! responses are counted and skipped (the server acknowledged and dropped
//! the batch); *lost* means a request got no response at all, and any
//! non-zero count fails the run.
//!
//! Closed loop (default): the next batch is sent when the previous reply
//! arrives; latency is response time. Open loop (`--open-loop QPS`):
//! batches are scheduled on a fixed timetable and latency is measured
//! from the *scheduled* send time, so a stalling server accrues queueing
//! delay instead of quietly slowing the offered load (no coordinated
//! omission).
//!
//! Like `throughput.rs` and `BENCH_sim_throughput.json`: a default run
//! rewrites `BENCH_serve.json` at the repo root; `--check` compares
//! against the committed file and fails on a large regression; `--smoke`
//! is a short correctness run (nonzero QPS, zero lost, clean shutdown)
//! that writes nothing.
//!
//! Control modes (both require `--addr`, and skip the load run):
//! `--fingerprint-file PATH` probes a fixed PC set with predict-only
//! traffic — training nothing, so the probe does not perturb the state it
//! records — and writes one line per PC; two files from behaviorally
//! identical servers are byte-identical, which is how `scripts/check.sh`
//! proves a snapshot/restore cycle preserved the predictor. `--shutdown`
//! sends a graceful shutdown. Both print the server's warm-start counters
//! (`restored_entries` / `snapshot_age_s` / `restarts`) from `Stats`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mascot::prediction::{BypassClass, LoadOutcome, ObservedDependence, StoreDistance};
use mascot_bench::json::{scan_f64_field, JsonObject};
use mascot_predictors::PredictorKind;
use mascot_serve::metrics::{Histogram, HistogramSnapshot};
use mascot_serve::shard::ShardPoolConfig;
use mascot_serve::wire::{PredictItem, PredictReply, StatsReport, TrainItem, MAX_BATCH};
use mascot_serve::{Client, ServeConfig, Served, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct synthetic load PCs (spread across shards by the router).
const NUM_PCS: u64 = 4096;
/// Base address of the synthetic PC range.
const PC_BASE: u64 = 0x40_0000;
/// Fraction of trained outcomes that report a dependence.
const DEP_PROBABILITY: f64 = 0.3;

/// Allowed throughput regression vs the committed baseline in `--check`
/// mode. Loopback RPC on a shared machine is noisy, so the gate is loose;
/// the committed number documents the achieved rate.
const REGRESSION_TOLERANCE: f64 = 0.5;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

/// PCs probed by `--fingerprint-file` (first PCs of the load range).
const FINGERPRINT_PCS: u64 = 512;
/// Fixed store sequence for fingerprint probes, far past anything a warmup
/// dispatched: the prediction then depends only on predictor table state.
const FINGERPRINT_STORE_SEQ: u64 = 1 << 40;

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    kind: PredictorKind,
    shards: usize,
    threads: usize,
    batch: usize,
    duration: Duration,
    train_every: usize,
    open_loop_qps: Option<u64>,
    smoke: bool,
    check: bool,
    fingerprint_file: Option<String>,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            kind: PredictorKind::Mascot,
            shards: 4,
            threads: 4,
            batch: 64,
            duration: Duration::from_millis(3000),
            train_every: 1,
            open_loop_qps: None,
            smoke: false,
            check: false,
            fingerprint_file: None,
            shutdown: false,
        }
    }
}

fn usage() -> &'static str {
    "usage: mascot-loadgen [--addr HOST:PORT | --inproc] [--predictor KIND]\n\
    \x20                     [--shards N] [--threads N] [--batch N]\n\
    \x20                     [--duration-ms N] [--train-every N] [--open-loop QPS]\n\
    \x20                     [--smoke] [--check]\n\
    \x20                     [--fingerprint-file PATH] [--shutdown]\n\
    Without --addr an in-process server is spawned (--predictor/--shards\n\
    size it). --smoke runs short and asserts correctness; --check compares\n\
    throughput against the committed BENCH_serve.json.\n\
    --fingerprint-file probes a fixed PC set (predict-only) and writes one\n\
    line per PC; --shutdown stops the server gracefully. Both are control\n\
    modes: they require --addr, skip the load run, and print the server's\n\
    warm-start counters."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--inproc" => args.addr = None,
            "--predictor" => {
                args.kind = value("--predictor")?
                    .parse::<PredictorKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => args.shards = parse_positive(&value("--shards")?, "--shards")?,
            "--threads" => args.threads = parse_positive(&value("--threads")?, "--threads")?,
            "--batch" => {
                args.batch = parse_positive(&value("--batch")?, "--batch")?;
                if args.batch > MAX_BATCH {
                    return Err(format!("--batch exceeds wire limit of {MAX_BATCH}"));
                }
            }
            "--duration-ms" => {
                args.duration = Duration::from_millis(parse_positive(
                    &value("--duration-ms")?,
                    "--duration-ms",
                )? as u64);
            }
            "--train-every" => {
                args.train_every = parse_positive(&value("--train-every")?, "--train-every")?;
            }
            "--open-loop" => {
                args.open_loop_qps =
                    Some(parse_positive(&value("--open-loop")?, "--open-loop")? as u64);
            }
            "--smoke" => {
                args.smoke = true;
                args.duration = Duration::from_millis(400);
            }
            "--check" => args.check = true,
            "--fingerprint-file" => {
                args.fingerprint_file = Some(value("--fingerprint-file")?);
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if (args.fingerprint_file.is_some() || args.shutdown) && args.addr.is_none() {
        return Err("--fingerprint-file and --shutdown require --addr".to_string());
    }
    Ok(args)
}

fn parse_positive(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{name} must be a positive integer, got {s:?}"))
}

/// Per-thread tallies, merged after the run.
#[derive(Default)]
struct ThreadTotals {
    predict_items: u64,
    predict_frames: u64,
    train_items: u64,
    busy_items: u64,
    lost: u64,
    latency: HistogramSnapshot,
}

impl ThreadTotals {
    fn merge(&mut self, other: &ThreadTotals) {
        self.predict_items += other.predict_items;
        self.predict_frames += other.predict_frames;
        self.train_items += other.train_items;
        self.busy_items += other.busy_items;
        self.lost += other.lost;
        self.latency.merge(&other.latency);
    }
}

fn synth_outcome(rng: &mut StdRng, pc: u64) -> LoadOutcome {
    if rng.random::<f64>() < DEP_PROBABILITY {
        let distance = StoreDistance::new(1 + rng.random::<u32>() % 32).expect("1..=32 in range");
        LoadOutcome::dependent(ObservedDependence {
            distance,
            class: BypassClass::DirectBypass,
            store_pc: pc.wrapping_sub(8),
            branches_between: rng.random::<u32>() % 4,
        })
    } else {
        LoadOutcome::independent()
    }
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One client thread: issue batches until the deadline, then report.
fn client_thread(
    addr: &str,
    args: &Args,
    thread_id: usize,
    start: Instant,
    failed: &AtomicBool,
) -> ThreadTotals {
    let mut totals = ThreadTotals::default();
    let latency = Histogram::new();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mascot-loadgen: thread {thread_id}: connect failed: {e}");
            failed.store(true, Ordering::Relaxed);
            return totals;
        }
    };
    let mut rng = StdRng::seed_from_u64(0x10adu64 ^ (thread_id as u64) << 32);
    let deadline = start + args.duration;
    // Open loop: this thread's share of the target frame rate.
    let interval = args
        .open_loop_qps
        .map(|qps| Duration::from_secs_f64(args.threads as f64 / qps.max(1) as f64));
    let mut store_seq = 0u64;
    let mut batch_no = 0u64;

    while Instant::now() < deadline {
        let scheduled = match interval {
            Some(iv) => {
                let at = start + iv.mul_f64(batch_no as f64);
                if let Some(wait) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                at
            }
            None => Instant::now(),
        };
        batch_no += 1;
        let items: Vec<PredictItem> = (0..args.batch)
            .map(|_| {
                store_seq += 1 + rng.random::<u64>() % 3;
                PredictItem {
                    pc: PC_BASE + (rng.random::<u64>() % NUM_PCS) * 4,
                    store_seq,
                }
            })
            .collect();
        let n = items.len() as u64;
        let replies = match client.predict(items.clone()) {
            Ok(Served::Ok(replies)) => {
                latency.record_ns(elapsed_ns(scheduled));
                totals.predict_items += n;
                totals.predict_frames += 1;
                replies
            }
            Ok(Served::Busy) => {
                latency.record_ns(elapsed_ns(scheduled));
                totals.busy_items += n;
                // Back off a little: the shard queues are full.
                std::thread::sleep(Duration::from_micros(50));
                continue;
            }
            Err(e) => {
                eprintln!("mascot-loadgen: thread {thread_id}: predict failed: {e}");
                totals.lost += n;
                failed.store(true, Ordering::Relaxed);
                break;
            }
        };
        if batch_no % args.train_every as u64 != 0 {
            continue;
        }
        // Reply order matches request order: pair tickets with the items.
        let trains: Vec<TrainItem> = items
            .iter()
            .zip(&replies)
            .map(|(item, r)| TrainItem {
                ticket: r.ticket,
                pc: item.pc,
                outcome: synth_outcome(&mut rng, item.pc),
            })
            .collect();
        let n = trains.len() as u64;
        match client.train(trains) {
            Ok(Served::Ok(_)) => totals.train_items += n,
            Ok(Served::Busy) => totals.busy_items += n,
            Err(e) => {
                eprintln!("mascot-loadgen: thread {thread_id}: train failed: {e}");
                totals.lost += n;
                failed.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    totals.latency = latency.snapshot();
    totals
}

/// `--fingerprint-file` / `--shutdown`: a short control session against a
/// remote server instead of a load run. Prints the warm-start counters,
/// optionally writes the prediction fingerprint, optionally shuts the
/// server down (in that order, so a combined invocation fingerprints the
/// state that is about to be checkpointed).
fn control_session(args: &Args) -> Result<(), String> {
    let addr = args.addr.as_deref().expect("checked in parse_args");
    let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;

    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    // All shards are stamped identically at warm start; take the max so a
    // half-stamped report (which would be a bug) still surfaces a value.
    let restarts = stats.shards.iter().map(|s| s.restarts).max().unwrap_or(0);
    let age = stats.shards.iter().map(|s| s.snapshot_age_s).max().unwrap_or(0);
    println!(
        "warm: restored_entries={} snapshot_age_s={} restarts={}",
        stats.total_restored(),
        age,
        restarts
    );

    if let Some(path) = &args.fingerprint_file {
        let mut out = String::new();
        let pcs: Vec<u64> = (0..FINGERPRINT_PCS).map(|i| PC_BASE + i * 4).collect();
        for chunk in pcs.chunks(args.batch.min(MAX_BATCH)) {
            let items: Vec<PredictItem> = chunk
                .iter()
                .map(|&pc| PredictItem {
                    pc,
                    store_seq: FINGERPRINT_STORE_SEQ,
                })
                .collect();
            let replies = predict_retrying(&mut client, items)?;
            for (&pc, reply) in chunk.iter().zip(&replies) {
                out.push_str(&format!("{pc:#x} {:?}\n", reply.prediction));
            }
        }
        std::fs::write(path, out).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("fingerprint: {FINGERPRINT_PCS} pcs -> {path}");
    }

    if args.shutdown {
        let served = client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("shutdown: served={served}");
    }
    Ok(())
}

/// Predicts with a bounded busy-retry loop: a fingerprint probe must not
/// silently drop PCs just because the server was momentarily loaded.
fn predict_retrying(
    client: &mut Client,
    items: Vec<PredictItem>,
) -> Result<Vec<PredictReply>, String> {
    for attempt in 0u32..50 {
        match client
            .predict(items.clone())
            .map_err(|e| format!("predict failed: {e}"))?
        {
            Served::Ok(replies) => return Ok(replies),
            Served::Busy => {
                std::thread::sleep(Duration::from_micros(100 << attempt.min(8)));
            }
        }
    }
    Err("server stayed busy across 50 fingerprint attempts".to_string())
}

struct RunOutcome {
    totals: ThreadTotals,
    elapsed: Duration,
    stats: StatsReport,
    served_at_shutdown: u64,
    drained: StatsReport,
    failed: bool,
}

fn run(args: &Args) -> Result<RunOutcome, String> {
    // In-process server unless pointed at a remote one.
    let (addr, server_handle) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                kind: args.kind,
                pool: ShardPoolConfig {
                    shards: args.shards,
                    ..Default::default()
                },
            };
            let server = Server::bind(&cfg).map_err(|e| format!("bind failed: {e}"))?;
            let (addr, handle) = server.spawn();
            (addr.to_string(), Some(handle))
        }
    };

    let failed = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let workers: Vec<_> = (0..args.threads)
        .map(|thread_id| {
            let addr = addr.clone();
            let args = args.clone();
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || client_thread(&addr, &args, thread_id, start, &failed))
        })
        .collect();
    let mut totals = ThreadTotals::default();
    for worker in workers {
        totals.merge(&worker.join().map_err(|_| "client thread panicked")?);
    }
    let elapsed = start.elapsed();

    // Control connection: final server-side stats, then graceful shutdown.
    let mut control =
        Client::connect(&addr).map_err(|e| format!("control connect failed: {e}"))?;
    let stats = control.stats().map_err(|e| format!("stats failed: {e}"))?;
    let served_at_shutdown = control
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    let drained = match server_handle {
        Some(handle) => handle.join().map_err(|_| "server thread panicked")?,
        // Remote server: it drains on its own; reuse the last snapshot.
        None => stats.clone(),
    };
    Ok(RunOutcome {
        totals,
        elapsed,
        stats,
        served_at_shutdown,
        drained,
        failed: failed.load(Ordering::Relaxed),
    })
}

fn to_json(args: &Args, out: &RunOutcome, qps: f64) -> String {
    JsonObject::new()
        .str("predictor", &args.kind.label())
        .int("shards", args.shards as u64)
        .int("threads", args.threads as u64)
        .int("batch", args.batch as u64)
        .int("duration_ms", out.elapsed.as_millis() as u64)
        .str(
            "mode",
            if args.open_loop_qps.is_some() {
                "open-loop"
            } else {
                "closed-loop"
            },
        )
        .float("predict_items_per_sec", qps, 0)
        .float(
            "predict_frames_per_sec",
            out.totals.predict_frames as f64 / out.elapsed.as_secs_f64(),
            0,
        )
        .int("predict_items", out.totals.predict_items)
        .int("train_items", out.totals.train_items)
        .int("busy_items", out.totals.busy_items)
        .int("lost", out.totals.lost)
        .float(
            "latency_p50_us",
            out.totals.latency.quantile_ns(0.50) as f64 / 1e3,
            1,
        )
        .float(
            "latency_p99_us",
            out.totals.latency.quantile_ns(0.99) as f64 / 1e3,
            1,
        )
        .int("server_requests", out.drained.total_requests())
        .int("server_predicts", out.drained.total_predicts())
        .int("server_trains", out.drained.total_trains())
        .int("server_rejected", out.drained.total_rejected())
        .float("shard_service_p99_us", worst_service_p99_us(&out.stats), 1)
        .render()
}

/// Slowest shard's p99 job service time (from the pre-shutdown snapshot),
/// in microseconds. Percentiles cannot be merged across shards, so the
/// worst shard is the honest summary.
fn worst_service_p99_us(stats: &StatsReport) -> f64 {
    stats
        .shards
        .iter()
        .map(|s| s.service_p99_ns)
        .max()
        .unwrap_or(0) as f64
        / 1e3
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mascot-loadgen: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.fingerprint_file.is_some() || args.shutdown {
        return match control_session(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("mascot-loadgen: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out = match run(&args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("mascot-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let qps = out.totals.predict_items as f64 / out.elapsed.as_secs_f64();
    println!(
        "{} predict items in {:.2}s: {:.0} items/s ({:.0} frames/s), \
         p50 {:.1}us p99 {:.1}us, {} trained, {} busy, {} lost",
        out.totals.predict_items,
        out.elapsed.as_secs_f64(),
        qps,
        out.totals.predict_frames as f64 / out.elapsed.as_secs_f64(),
        out.totals.latency.quantile_ns(0.50) as f64 / 1e3,
        out.totals.latency.quantile_ns(0.99) as f64 / 1e3,
        out.totals.train_items,
        out.totals.busy_items,
        out.totals.lost,
    );
    println!(
        "server: {} requests ({} predicts, {} trains, {} rejected) over {} shards; \
         {} served at shutdown",
        out.drained.total_requests(),
        out.drained.total_predicts(),
        out.drained.total_trains(),
        out.drained.total_rejected(),
        out.drained.shards.len(),
        out.served_at_shutdown,
    );
    println!(
        "server: worst-shard p99 job service time {:.1}us",
        worst_service_p99_us(&out.stats)
    );

    if out.failed || out.totals.lost > 0 {
        eprintln!("FAIL: {} lost/unanswered requests", out.totals.lost);
        return ExitCode::FAILURE;
    }

    if args.smoke {
        if out.totals.predict_items == 0 || qps <= 0.0 {
            eprintln!("FAIL: smoke run achieved zero QPS");
            return ExitCode::FAILURE;
        }
        // A drained server must have answered every item the clients saw
        // answered (it may have done more: batches it processed for
        // requests that were reported Busy at the frame level).
        let client_items = out.totals.predict_items + out.totals.train_items;
        if out.drained.total_requests() < client_items {
            eprintln!(
                "FAIL: server drained {} items but clients saw {client_items} answered",
                out.drained.total_requests()
            );
            return ExitCode::FAILURE;
        }
        println!("smoke ok: nonzero QPS, zero lost, clean drain");
        return ExitCode::SUCCESS;
    }

    if args.check {
        let baseline = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("no committed baseline at {BASELINE_PATH}: {e}");
                eprintln!("run mascot-loadgen without --check to create it");
                return ExitCode::from(2);
            }
        };
        let Some(base) = scan_f64_field(&baseline, "predict_items_per_sec") else {
            eprintln!("malformed baseline: missing predict_items_per_sec");
            return ExitCode::from(2);
        };
        let ratio = qps / base;
        println!("baseline: {base:.0} items/s, ratio {ratio:.3}");
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            eprintln!(
                "FAIL: serve throughput regressed {:.1}% (> {:.0}% tolerance)",
                (1.0 - ratio) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("serve throughput check passed");
        return ExitCode::SUCCESS;
    }

    let json = to_json(&args, &out, qps);
    if let Err(e) = std::fs::write(BASELINE_PATH, json) {
        eprintln!("failed to write {BASELINE_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {BASELINE_PATH}");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_outcomes_mix_dependences() {
        let mut rng = StdRng::seed_from_u64(1);
        let dependent = (0..1000)
            .filter(|_| synth_outcome(&mut rng, PC_BASE).is_dependent())
            .count();
        assert!(dependent > 100 && dependent < 600, "got {dependent}");
    }
}
