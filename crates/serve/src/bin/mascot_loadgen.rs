//! `mascot-loadgen` — closed- and open-loop benchmark client for `mascotd`.
//!
//! ```text
//! mascot-loadgen [--addr HOST:PORT | --inproc] [--predictor KIND]
//!                [--shards N] [--threads N] [--connections N] [--batch N]
//!                [--duration-ms N] [--train-every N] [--open-loop FPS]
//!                [--slo-p999-us N] [--soak] [--smoke] [--check]
//!                [--fingerprint-file PATH] [--shutdown]
//! ```
//!
//! Each worker thread multiplexes its share of `--connections` non-blocking
//! sockets over one `epoll` instance (the same [`mascot_serve::poll`] /
//! [`mascot_serve::conn`] plumbing the server's event loop uses), so a few
//! threads can hold thousands of concurrent connections open against the
//! server. Every connection runs one transaction at a time: a predict batch
//! of synthetic loads, followed — every `--train-every`th transaction — by a
//! train request quoting the returned tickets, so the server sees the mixed
//! predict/train traffic a simulator frontend would generate. `Busy`
//! responses are counted and end the transaction (the server acknowledged
//! and dropped the batch); *lost* means a request got no response at all,
//! and any non-zero count fails the run.
//!
//! Closed loop (default): an idle connection starts its next transaction
//! immediately; latency is response time. Open loop (`--open-loop FPS`):
//! transactions arrive on a fixed timetable shared across the worker's
//! connections, and latency is measured from the *scheduled* arrival time —
//! if every connection is busy, arrivals queue in a backlog with their
//! stamps intact, so a stalling server accrues queueing delay instead of
//! quietly slowing the offered load (no coordinated omission).
//!
//! `--soak` is the SLO gate `scripts/check.sh` runs: open-loop load over
//! 1024 connections (defaults; all overridable) that fails unless the run
//! finishes with zero lost requests, zero `Busy` rejections, a clean
//! server drain, and a p999 latency at or under `--slo-p999-us`.
//!
//! Like `throughput.rs` and `BENCH_sim_throughput.json`: a default run
//! rewrites `BENCH_serve.json` at the repo root; `--check` compares against
//! the committed file and fails on a large throughput regression or a p999
//! above the committed SLO. Baselines that predate the SLO schema
//! (`connections` / `latency_p999_us` / `slo_p999_us`) are rejected until
//! re-baselined.
//!
//! Control modes (both require `--addr`, and skip the load run):
//! `--fingerprint-file PATH` probes a fixed PC set with predict-only
//! traffic — training nothing, so the probe does not perturb the state it
//! records — and writes one line per PC; two files from behaviorally
//! identical servers are byte-identical, which is how `scripts/check.sh`
//! proves a snapshot/restore cycle preserved the predictor. `--shutdown`
//! sends a graceful shutdown. Both print the server's warm-start counters
//! (`restored_entries` / `snapshot_age_s` / `restarts`) from `Stats`.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mascot::prediction::{BypassClass, LoadOutcome, ObservedDependence, StoreDistance};
use mascot_bench::json::{scan_f64_field, JsonObject};
use mascot_predictors::PredictorKind;
use mascot_serve::conn::{RecvBuf, SendBuf, READ_CHUNK};
use mascot_serve::metrics::{Histogram, HistogramSnapshot};
use mascot_serve::poll::{Event, Poller};
use mascot_serve::shard::ShardPoolConfig;
use mascot_serve::wire::{
    Opcode, PredictItem, PredictReply, Request, Response, StatsReport, TrainItem, MAX_BATCH,
};
use mascot_serve::{Client, ServeConfig, Served, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct synthetic load PCs (spread across shards by the router).
const NUM_PCS: u64 = 4096;
/// Base address of the synthetic PC range.
const PC_BASE: u64 = 0x40_0000;
/// Fraction of trained outcomes that report a dependence.
const DEP_PROBABILITY: f64 = 0.3;

/// Allowed throughput regression vs the committed baseline in `--check`
/// mode. Loopback RPC on a shared machine is noisy, so the gate is loose;
/// the committed number documents the achieved rate.
const REGRESSION_TOLERANCE: f64 = 0.5;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

/// PCs probed by `--fingerprint-file` (first PCs of the load range).
const FINGERPRINT_PCS: u64 = 512;
/// Fixed store sequence for fingerprint probes, far past anything a warmup
/// dispatched: the prediction then depends only on predictor table state.
const FINGERPRINT_STORE_SEQ: u64 = 1 << 40;

/// `--soak` defaults: connection count, open-loop frame rate, run length.
const SOAK_CONNECTIONS: usize = 1024;
const SOAK_FRAME_RATE: u64 = 2000;
const SOAK_DURATION_MS: u64 = 2500;

/// Default p999 SLO in microseconds. Generous on purpose: the gate exists
/// to catch a stalled or head-of-line-blocked server (tail in the seconds),
/// not to benchmark a loaded single-core CI box.
const DEFAULT_SLO_P999_US: f64 = 250_000.0;

/// Grace period after the load deadline for in-flight transactions to
/// drain; anything still unanswered after it counts as lost.
const DRAIN_GRACE_NS: u64 = 2_000_000_000;

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    kind: PredictorKind,
    shards: usize,
    threads: usize,
    connections: usize,
    batch: usize,
    duration: Duration,
    train_every: usize,
    open_loop_qps: Option<u64>,
    slo_p999_us: f64,
    soak: bool,
    smoke: bool,
    check: bool,
    fingerprint_file: Option<String>,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            kind: PredictorKind::Mascot,
            shards: 4,
            threads: 4,
            connections: 4,
            batch: 64,
            duration: Duration::from_millis(3000),
            train_every: 1,
            open_loop_qps: None,
            slo_p999_us: DEFAULT_SLO_P999_US,
            soak: false,
            smoke: false,
            check: false,
            fingerprint_file: None,
            shutdown: false,
        }
    }
}

fn usage() -> &'static str {
    "usage: mascot-loadgen [--addr HOST:PORT | --inproc] [--predictor KIND]\n\
    \x20                     [--shards N] [--threads N] [--connections N]\n\
    \x20                     [--batch N] [--duration-ms N] [--train-every N]\n\
    \x20                     [--open-loop FPS] [--slo-p999-us N] [--soak]\n\
    \x20                     [--smoke] [--check]\n\
    \x20                     [--fingerprint-file PATH] [--shutdown]\n\
    Without --addr an in-process server is spawned (--predictor/--shards\n\
    size it). --connections defaults to --threads; each worker thread\n\
    multiplexes its share of the connections (one transaction in flight\n\
    per connection). --open-loop schedules transactions at a fixed frame\n\
    rate and measures latency from the scheduled arrival. --soak is the\n\
    SLO gate: 1024 connections of open-loop load that must finish with\n\
    zero lost, a clean drain, and p999 <= --slo-p999-us. --smoke runs\n\
    short and asserts correctness; --check compares throughput and p999\n\
    against the committed BENCH_serve.json.\n\
    --fingerprint-file probes a fixed PC set (predict-only) and writes one\n\
    line per PC; --shutdown stops the server gracefully. Both are control\n\
    modes: they require --addr, skip the load run, and print the server's\n\
    warm-start counters."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    // Flags with soak/smoke-dependent defaults: resolved after the scan so
    // explicit values always win regardless of flag order.
    let mut connections: Option<usize> = None;
    let mut duration_ms: Option<u64> = None;
    let mut slo_p999_us: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--inproc" => args.addr = None,
            "--predictor" => {
                args.kind = value("--predictor")?
                    .parse::<PredictorKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => args.shards = parse_positive(&value("--shards")?, "--shards")?,
            "--threads" => args.threads = parse_positive(&value("--threads")?, "--threads")?,
            "--connections" => {
                connections = Some(parse_positive(&value("--connections")?, "--connections")?);
            }
            "--batch" => {
                args.batch = parse_positive(&value("--batch")?, "--batch")?;
                if args.batch > MAX_BATCH {
                    return Err(format!("--batch exceeds wire limit of {MAX_BATCH}"));
                }
            }
            "--duration-ms" => {
                duration_ms = Some(parse_positive(&value("--duration-ms")?, "--duration-ms")? as u64);
            }
            "--train-every" => {
                args.train_every = parse_positive(&value("--train-every")?, "--train-every")?;
            }
            "--open-loop" => {
                args.open_loop_qps =
                    Some(parse_positive(&value("--open-loop")?, "--open-loop")? as u64);
            }
            "--slo-p999-us" => {
                slo_p999_us =
                    Some(parse_positive(&value("--slo-p999-us")?, "--slo-p999-us")? as f64);
            }
            "--soak" => args.soak = true,
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--fingerprint-file" => {
                args.fingerprint_file = Some(value("--fingerprint-file")?);
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.soak {
        connections.get_or_insert(SOAK_CONNECTIONS);
        args.open_loop_qps.get_or_insert(SOAK_FRAME_RATE);
        duration_ms.get_or_insert(SOAK_DURATION_MS);
    }
    args.connections = connections.unwrap_or(args.threads);
    args.slo_p999_us = slo_p999_us.unwrap_or(DEFAULT_SLO_P999_US);
    args.duration = Duration::from_millis(duration_ms.unwrap_or(if args.smoke {
        400
    } else {
        3000
    }));
    if (args.fingerprint_file.is_some() || args.shutdown) && args.addr.is_none() {
        return Err("--fingerprint-file and --shutdown require --addr".to_string());
    }
    Ok(args)
}

fn parse_positive(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{name} must be a positive integer, got {s:?}"))
}

/// Per-thread tallies, merged after the run.
#[derive(Default)]
struct ThreadTotals {
    predict_items: u64,
    predict_frames: u64,
    train_items: u64,
    busy_items: u64,
    lost: u64,
    latency: HistogramSnapshot,
}

impl ThreadTotals {
    fn merge(&mut self, other: &ThreadTotals) {
        self.predict_items += other.predict_items;
        self.predict_frames += other.predict_frames;
        self.train_items += other.train_items;
        self.busy_items += other.busy_items;
        self.lost += other.lost;
        self.latency.merge(&other.latency);
    }
}

fn synth_outcome(rng: &mut StdRng, pc: u64) -> LoadOutcome {
    if rng.random::<f64>() < DEP_PROBABILITY {
        let distance = StoreDistance::new(1 + rng.random::<u32>() % 32).expect("1..=32 in range");
        LoadOutcome::dependent(ObservedDependence {
            distance,
            class: BypassClass::DirectBypass,
            store_pc: pc.wrapping_sub(8),
            branches_between: rng.random::<u32>() % 4,
        })
    } else {
        LoadOutcome::independent()
    }
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Open-loop arrival bookkeeping: a fixed timetable of nanosecond offsets
/// from the run start, no clocks inside. [`ArrivalSchedule::pop_due`] hands
/// out each arrival's *scheduled* time, which is what latency is measured
/// from — the coordinated-omission guard. Pure so the guard is unit-testable
/// without a server (see `open_loop_latency_counts_queueing_delay`).
struct ArrivalSchedule {
    interval_ns: u64,
    issued: u64,
}

impl ArrivalSchedule {
    fn new(interval_ns: u64) -> Self {
        Self {
            interval_ns: interval_ns.max(1),
            issued: 0,
        }
    }

    /// Scheduled time of the next arrival not yet handed out.
    fn next_due(&self) -> u64 {
        self.issued * self.interval_ns
    }

    /// Hands out the next arrival's scheduled time if it is due.
    fn pop_due(&mut self, now_ns: u64) -> Option<u64> {
        let due = self.next_due();
        if due <= now_ns {
            self.issued += 1;
            Some(due)
        } else {
            None
        }
    }
}

/// One connection's transaction state in a multiplexed worker.
enum Phase {
    /// No request outstanding.
    Idle,
    /// A predict batch is in flight. `scheduled_ns` is what latency is
    /// measured from: the scheduled arrival in open loop, the send time in
    /// closed loop.
    AwaitPredict {
        items: Vec<PredictItem>,
        scheduled_ns: u64,
    },
    /// A train batch of `n` items is in flight.
    AwaitTrain { n: u64 },
}

impl Phase {
    /// Items that would count lost if the connection died right now.
    fn outstanding(&self) -> u64 {
        match self {
            Phase::Idle => 0,
            Phase::AwaitPredict { items, .. } => items.len() as u64,
            Phase::AwaitTrain { n } => *n,
        }
    }
}

/// One non-blocking client connection.
struct LoadConn {
    stream: TcpStream,
    rd: RecvBuf,
    wr: SendBuf,
    phase: Phase,
    /// Completed predict transactions (drives `--train-every`).
    txns: u64,
    /// Whether EPOLLOUT is currently registered.
    reg_write: bool,
}

impl LoadConn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rd: RecvBuf::new(),
            wr: SendBuf::new(),
            phase: Phase::Idle,
            txns: 0,
            reg_write: false,
        }
    }
}

/// Reads whatever the socket has, decodes complete response frames, and
/// advances the transaction state machine. An `Err` poisons the connection
/// (the caller kills it and counts the outstanding items lost).
fn pump_replies(
    conn: &mut LoadConn,
    args: &Args,
    t0: Instant,
    latency: &Histogram,
    totals: &mut ThreadTotals,
    rng: &mut StdRng,
) -> Result<(), String> {
    match conn.rd.fill(&mut conn.stream, READ_CHUNK) {
        Ok(0) => return Err("server closed the connection".to_string()),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
        Err(e) => return Err(format!("read failed: {e}")),
    }
    loop {
        let (code, len) = match conn.rd.peek_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("bad frame: {e}")),
        };
        let expected = match conn.phase {
            Phase::AwaitPredict { .. } => Opcode::Predict,
            Phase::AwaitTrain { .. } => Opcode::Train,
            Phase::Idle => return Err("response with no request outstanding".to_string()),
        };
        let resp = Response::decode(expected, code, conn.rd.payload(len))
            .map_err(|e| format!("bad response: {e}"))?;
        conn.rd.consume_frame(len);
        let phase = std::mem::replace(&mut conn.phase, Phase::Idle);
        match (phase, resp) {
            (Phase::AwaitPredict { items, scheduled_ns }, Response::Predict(replies)) => {
                latency.record_ns(elapsed_ns(t0).saturating_sub(scheduled_ns));
                totals.predict_items += items.len() as u64;
                totals.predict_frames += 1;
                conn.txns += 1;
                if replies.len() != items.len() {
                    return Err("predict reply count mismatch".to_string());
                }
                if conn.txns % args.train_every as u64 == 0 {
                    // Reply order matches request order: pair tickets with
                    // the items.
                    let trains: Vec<TrainItem> = items
                        .iter()
                        .zip(&replies)
                        .map(|(item, r)| TrainItem {
                            ticket: r.ticket,
                            pc: item.pc,
                            outcome: synth_outcome(rng, item.pc),
                        })
                        .collect();
                    let n = trains.len() as u64;
                    let frame = Request::Train(trains)
                        .encode_frame()
                        .map_err(|e| format!("encode failed: {e}"))?;
                    conn.wr.push(&frame);
                    conn.phase = Phase::AwaitTrain { n };
                }
            }
            (Phase::AwaitPredict { items, scheduled_ns }, Response::Busy) => {
                // The server acknowledged and dropped the batch: the
                // transaction is answered, just not served.
                latency.record_ns(elapsed_ns(t0).saturating_sub(scheduled_ns));
                totals.busy_items += items.len() as u64;
            }
            (Phase::AwaitTrain { n }, Response::Train { .. }) => totals.train_items += n,
            (Phase::AwaitTrain { n }, Response::Busy) => totals.busy_items += n,
            (_, Response::Error(msg)) => return Err(format!("server error: {msg}")),
            _ => return Err("response kind does not match the outstanding request".to_string()),
        }
    }
}

/// Flushes pending response bytes and mirrors write interest into epoll.
fn flush_conn(conn: &mut LoadConn, token: u64, poller: &Poller) -> io::Result<()> {
    if !conn.wr.is_empty() {
        conn.wr.flush(&mut conn.stream)?;
    }
    let want_write = !conn.wr.is_empty();
    if want_write != conn.reg_write {
        poller.modify(conn.stream.as_raw_fd(), token, true, want_write)?;
        conn.reg_write = want_write;
    }
    Ok(())
}

/// One worker thread: multiplexes its share of the connections over one
/// poller until the deadline, drains in-flight transactions, and reports.
fn worker_loop(addr: &str, args: &Args, worker_id: usize, failed: &AtomicBool) -> ThreadTotals {
    let mut totals = ThreadTotals::default();
    let latency = Histogram::new();
    let n_conns = args.connections / args.threads
        + usize::from(worker_id < args.connections % args.threads);
    if n_conns == 0 {
        return totals;
    }
    let fail = |msg: String| {
        eprintln!("mascot-loadgen: worker {worker_id}: {msg}");
        failed.store(true, Ordering::Relaxed);
    };
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            fail(format!("epoll_create failed: {e}"));
            return totals;
        }
    };
    let mut conns: Vec<Option<LoadConn>> = Vec::with_capacity(n_conns);
    for token in 0..n_conns {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                fail(format!("connect {} of {n_conns} failed: {e}", token + 1));
                return totals;
            }
        };
        let _ = stream.set_nodelay(true);
        if let Err(e) = stream
            .set_nonblocking(true)
            .and_then(|()| poller.add(stream.as_raw_fd(), token as u64, true, false))
        {
            fail(format!("failed to register connection: {e}"));
            return totals;
        }
        conns.push(Some(LoadConn::new(stream)));
    }
    let mut live = n_conns;
    let mut rng = StdRng::seed_from_u64(0x10adu64 ^ (worker_id as u64) << 32);
    let mut store_seq = 0u64;
    let duration_ns = args.duration.as_nanos().min(u128::from(u64::MAX)) as u64;
    // This worker offers 1/threads of the open-loop frame rate.
    let mut schedule = args.open_loop_qps.map(|fps| {
        ArrivalSchedule::new((args.threads as u64).saturating_mul(1_000_000_000) / fps.max(1))
    });
    let mut backlog: VecDeque<u64> = VecDeque::new();
    let mut events: Vec<Event> = Vec::new();
    // The arrival clock starts after the connect phase so connection setup
    // is not billed as server queueing delay.
    let t0 = Instant::now();

    loop {
        let now = elapsed_ns(t0);
        if live == 0 {
            break;
        }
        if now >= duration_ns {
            let outstanding: u64 = conns.iter().flatten().map(|c| c.phase.outstanding()).sum();
            if outstanding == 0 {
                break;
            }
            if now >= duration_ns + DRAIN_GRACE_NS {
                totals.lost += outstanding;
                fail(format!("{outstanding} items unanswered at drain deadline"));
                break;
            }
        } else {
            // Pull due arrivals into the backlog; their scheduled stamps
            // survive any wait for a free connection.
            if let Some(sched) = &mut schedule {
                while let Some(s) = sched.pop_due(now) {
                    backlog.push_back(s);
                }
            }
            // Start transactions on idle connections.
            for idx in 0..conns.len() {
                let Some(conn) = conns[idx].as_mut() else {
                    continue;
                };
                if !matches!(conn.phase, Phase::Idle) {
                    continue;
                }
                let scheduled_ns = if schedule.is_some() {
                    match backlog.pop_front() {
                        Some(s) => s,
                        None => break,
                    }
                } else {
                    now
                };
                let items: Vec<PredictItem> = (0..args.batch)
                    .map(|_| {
                        store_seq += 1 + rng.random::<u64>() % 3;
                        PredictItem {
                            pc: PC_BASE + (rng.random::<u64>() % NUM_PCS) * 4,
                            store_seq,
                        }
                    })
                    .collect();
                let frame = Request::Predict(items.clone())
                    .encode_frame()
                    .expect("--batch validated against wire limit");
                conn.wr.push(&frame);
                conn.phase = Phase::AwaitPredict {
                    items,
                    scheduled_ns,
                };
            }
        }
        // Flush queued request bytes (partial writes keep EPOLLOUT armed).
        for idx in 0..conns.len() {
            let Some(conn) = conns[idx].as_mut() else {
                continue;
            };
            if let Err(e) = flush_conn(conn, idx as u64, &poller) {
                let conn = conns[idx].take().expect("checked above");
                totals.lost += conn.phase.outstanding();
                poller.delete(conn.stream.as_raw_fd());
                live -= 1;
                fail(format!("write failed: {e}"));
            }
        }
        // Park until a reply lands or the next open-loop arrival is due.
        let timeout_ms: i32 = if now >= duration_ns {
            10
        } else if let Some(sched) = &schedule {
            let gap_ms = sched.next_due().saturating_sub(now) / 1_000_000;
            gap_ms.clamp(1, 10) as i32
        } else {
            10
        };
        if let Err(e) = poller.wait(&mut events, timeout_ms) {
            fail(format!("epoll_wait failed: {e}"));
            break;
        }
        for i in 0..events.len() {
            let ev = events[i];
            let idx = ev.token as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            let mut dead = None;
            if ev.readable || ev.hangup {
                if let Err(msg) = pump_replies(conn, args, t0, &latency, &mut totals, &mut rng) {
                    dead = Some(msg);
                }
            }
            if dead.is_none() && ev.writable {
                if let Err(e) = flush_conn(conn, ev.token, &poller) {
                    dead = Some(format!("write failed: {e}"));
                }
            }
            if let Some(msg) = dead {
                let conn = conns[idx].take().expect("resolved above");
                totals.lost += conn.phase.outstanding();
                poller.delete(conn.stream.as_raw_fd());
                live -= 1;
                fail(msg);
            }
        }
    }
    totals.latency = latency.snapshot();
    totals
}

/// `--fingerprint-file` / `--shutdown`: a short control session against a
/// remote server instead of a load run. Prints the warm-start counters,
/// optionally writes the prediction fingerprint, optionally shuts the
/// server down (in that order, so a combined invocation fingerprints the
/// state that is about to be checkpointed).
fn control_session(args: &Args) -> Result<(), String> {
    let addr = args.addr.as_deref().expect("checked in parse_args");
    let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;

    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    // All shards are stamped identically at warm start; take the max so a
    // half-stamped report (which would be a bug) still surfaces a value.
    let restarts = stats.shards.iter().map(|s| s.restarts).max().unwrap_or(0);
    let age = stats.shards.iter().map(|s| s.snapshot_age_s).max().unwrap_or(0);
    println!(
        "warm: restored_entries={} snapshot_age_s={} restarts={}",
        stats.total_restored(),
        age,
        restarts
    );

    if let Some(path) = &args.fingerprint_file {
        let mut out = String::new();
        let pcs: Vec<u64> = (0..FINGERPRINT_PCS).map(|i| PC_BASE + i * 4).collect();
        for chunk in pcs.chunks(args.batch.min(MAX_BATCH)) {
            let items: Vec<PredictItem> = chunk
                .iter()
                .map(|&pc| PredictItem {
                    pc,
                    store_seq: FINGERPRINT_STORE_SEQ,
                })
                .collect();
            let replies = predict_retrying(&mut client, items)?;
            for (&pc, reply) in chunk.iter().zip(&replies) {
                out.push_str(&format!("{pc:#x} {:?}\n", reply.prediction));
            }
        }
        std::fs::write(path, out).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("fingerprint: {FINGERPRINT_PCS} pcs -> {path}");
    }

    if args.shutdown {
        let served = client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("shutdown: served={served}");
    }
    Ok(())
}

/// Predicts with a bounded busy-retry loop: a fingerprint probe must not
/// silently drop PCs just because the server was momentarily loaded.
fn predict_retrying(
    client: &mut Client,
    items: Vec<PredictItem>,
) -> Result<Vec<PredictReply>, String> {
    for attempt in 0u32..50 {
        match client
            .predict(items.clone())
            .map_err(|e| format!("predict failed: {e}"))?
        {
            Served::Ok(replies) => return Ok(replies),
            Served::Busy => {
                std::thread::sleep(Duration::from_micros(100 << attempt.min(8)));
            }
        }
    }
    Err("server stayed busy across 50 fingerprint attempts".to_string())
}

struct RunOutcome {
    totals: ThreadTotals,
    elapsed: Duration,
    stats: StatsReport,
    served_at_shutdown: u64,
    drained: StatsReport,
    failed: bool,
}

fn run(args: &Args) -> Result<RunOutcome, String> {
    // In-process server unless pointed at a remote one.
    let (addr, server_handle) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                kind: args.kind,
                pool: ShardPoolConfig {
                    shards: args.shards,
                    ..Default::default()
                },
            };
            let server = Server::bind(&cfg).map_err(|e| format!("bind failed: {e}"))?;
            let (addr, handle) = server.spawn();
            (addr.to_string(), Some(handle))
        }
    };

    let failed = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let workers: Vec<_> = (0..args.threads)
        .map(|worker_id| {
            let addr = addr.clone();
            let args = args.clone();
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || worker_loop(&addr, &args, worker_id, &failed))
        })
        .collect();
    let mut totals = ThreadTotals::default();
    for worker in workers {
        totals.merge(&worker.join().map_err(|_| "client thread panicked")?);
    }
    let elapsed = start.elapsed();

    // Control connection: final server-side stats, then graceful shutdown.
    let mut control =
        Client::connect(&addr).map_err(|e| format!("control connect failed: {e}"))?;
    let stats = control.stats().map_err(|e| format!("stats failed: {e}"))?;
    let served_at_shutdown = control
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    let drained = match server_handle {
        Some(handle) => handle.join().map_err(|_| "server thread panicked")?,
        // Remote server: it drains on its own; reuse the last snapshot.
        None => stats.clone(),
    };
    Ok(RunOutcome {
        totals,
        elapsed,
        stats,
        served_at_shutdown,
        drained,
        failed: failed.load(Ordering::Relaxed),
    })
}

fn to_json(args: &Args, out: &RunOutcome, qps: f64) -> String {
    JsonObject::new()
        .str("predictor", &args.kind.label())
        .int("shards", args.shards as u64)
        .int("threads", args.threads as u64)
        .int("connections", args.connections as u64)
        .int("batch", args.batch as u64)
        .int("duration_ms", out.elapsed.as_millis() as u64)
        .str(
            "mode",
            if args.soak {
                "soak"
            } else if args.open_loop_qps.is_some() {
                "open-loop"
            } else {
                "closed-loop"
            },
        )
        .float("predict_items_per_sec", qps, 0)
        .float(
            "predict_frames_per_sec",
            out.totals.predict_frames as f64 / out.elapsed.as_secs_f64(),
            0,
        )
        .int("predict_items", out.totals.predict_items)
        .int("train_items", out.totals.train_items)
        .int("busy_items", out.totals.busy_items)
        .int("lost", out.totals.lost)
        .float(
            "latency_p50_us",
            out.totals.latency.quantile_ns(0.50) as f64 / 1e3,
            1,
        )
        .float(
            "latency_p99_us",
            out.totals.latency.quantile_ns(0.99) as f64 / 1e3,
            1,
        )
        .float(
            "latency_p999_us",
            out.totals.latency.quantile_ns(0.999) as f64 / 1e3,
            1,
        )
        .float("slo_p999_us", args.slo_p999_us, 1)
        .int("server_requests", out.drained.total_requests())
        .int("server_predicts", out.drained.total_predicts())
        .int("server_trains", out.drained.total_trains())
        .int("server_rejected", out.drained.total_rejected())
        .float("shard_service_p99_us", worst_service_p99_us(&out.stats), 1)
        .render()
}

/// Slowest shard's p99 job service time (from the pre-shutdown snapshot),
/// in microseconds. Percentiles cannot be merged across shards, so the
/// worst shard is the honest summary.
fn worst_service_p99_us(stats: &StatsReport) -> f64 {
    stats
        .shards
        .iter()
        .map(|s| s.service_p99_ns)
        .max()
        .unwrap_or(0) as f64
        / 1e3
}

/// Checks that the server drained at least every item the clients saw
/// answered (it may have done more: batches it processed for requests that
/// were reported `Busy` at the frame level).
fn drain_accounts(out: &RunOutcome) -> Result<(), String> {
    let client_items = out.totals.predict_items + out.totals.train_items;
    if out.drained.total_requests() < client_items {
        return Err(format!(
            "server drained {} items but clients saw {client_items} answered",
            out.drained.total_requests()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mascot-loadgen: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.fingerprint_file.is_some() || args.shutdown {
        return match control_session(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("mascot-loadgen: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out = match run(&args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("mascot-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let qps = out.totals.predict_items as f64 / out.elapsed.as_secs_f64();
    let p999_us = out.totals.latency.quantile_ns(0.999) as f64 / 1e3;
    println!(
        "{} predict items in {:.2}s over {} connections: {:.0} items/s ({:.0} frames/s), \
         p50 {:.1}us p99 {:.1}us p999 {:.1}us, {} trained, {} busy, {} lost",
        out.totals.predict_items,
        out.elapsed.as_secs_f64(),
        args.connections,
        qps,
        out.totals.predict_frames as f64 / out.elapsed.as_secs_f64(),
        out.totals.latency.quantile_ns(0.50) as f64 / 1e3,
        out.totals.latency.quantile_ns(0.99) as f64 / 1e3,
        p999_us,
        out.totals.train_items,
        out.totals.busy_items,
        out.totals.lost,
    );
    println!(
        "server: {} requests ({} predicts, {} trains, {} rejected) over {} shards; \
         {} served at shutdown",
        out.drained.total_requests(),
        out.drained.total_predicts(),
        out.drained.total_trains(),
        out.drained.total_rejected(),
        out.drained.shards.len(),
        out.served_at_shutdown,
    );
    println!(
        "server: worst-shard p99 job service time {:.1}us",
        worst_service_p99_us(&out.stats)
    );

    if out.failed || out.totals.lost > 0 {
        eprintln!("FAIL: {} lost/unanswered requests", out.totals.lost);
        return ExitCode::FAILURE;
    }

    if args.soak {
        if out.totals.predict_items == 0 {
            eprintln!("FAIL: soak run completed zero transactions");
            return ExitCode::FAILURE;
        }
        if let Err(e) = drain_accounts(&out) {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
        if out.totals.busy_items > 0 {
            eprintln!(
                "FAIL: soak shed {} items as Busy; the SLO gate requires the \
                 server to absorb the configured open-loop rate without \
                 admission-control rejections",
                out.totals.busy_items
            );
            return ExitCode::FAILURE;
        }
        if p999_us > args.slo_p999_us {
            eprintln!(
                "FAIL: p999 latency {p999_us:.1}us exceeds the {:.0}us SLO",
                args.slo_p999_us
            );
            return ExitCode::FAILURE;
        }
        println!(
            "soak ok: {} connections, zero lost, clean drain, p999 {p999_us:.1}us <= {:.0}us SLO",
            args.connections, args.slo_p999_us
        );
        return ExitCode::SUCCESS;
    }

    if args.smoke {
        if out.totals.predict_items == 0 || qps <= 0.0 {
            eprintln!("FAIL: smoke run achieved zero QPS");
            return ExitCode::FAILURE;
        }
        if let Err(e) = drain_accounts(&out) {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
        println!("smoke ok: nonzero QPS, zero lost, clean drain");
        return ExitCode::SUCCESS;
    }

    if args.check {
        let baseline = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("no committed baseline at {BASELINE_PATH}: {e}");
                eprintln!("run mascot-loadgen without --check to create it");
                return ExitCode::from(2);
            }
        };
        let Some(base) = scan_f64_field(&baseline, "predict_items_per_sec") else {
            eprintln!("malformed baseline: missing predict_items_per_sec");
            return ExitCode::from(2);
        };
        let (Some(_), Some(_), Some(base_slo)) = (
            scan_f64_field(&baseline, "connections"),
            scan_f64_field(&baseline, "latency_p999_us"),
            scan_f64_field(&baseline, "slo_p999_us"),
        ) else {
            eprintln!(
                "baseline predates the SLO schema: connections / latency_p999_us / \
                 slo_p999_us missing from {BASELINE_PATH}"
            );
            eprintln!("re-baseline: run mascot-loadgen without --check to rewrite it");
            return ExitCode::from(2);
        };
        let ratio = qps / base;
        println!("baseline: {base:.0} items/s, ratio {ratio:.3}; committed SLO {base_slo:.0}us");
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            eprintln!(
                "FAIL: serve throughput regressed {:.1}% (> {:.0}% tolerance)",
                (1.0 - ratio) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        if p999_us > base_slo {
            eprintln!(
                "FAIL: p999 latency {p999_us:.1}us exceeds the committed {base_slo:.0}us SLO"
            );
            return ExitCode::FAILURE;
        }
        println!("serve throughput and p999 SLO checks passed");
        return ExitCode::SUCCESS;
    }

    let json = to_json(&args, &out, qps);
    if let Err(e) = std::fs::write(BASELINE_PATH, json) {
        eprintln!("failed to write {BASELINE_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {BASELINE_PATH}");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_outcomes_mix_dependences() {
        let mut rng = StdRng::seed_from_u64(1);
        let dependent = (0..1000)
            .filter(|_| synth_outcome(&mut rng, PC_BASE).is_dependent())
            .count();
        assert!(dependent > 100 && dependent < 600, "got {dependent}");
    }

    #[test]
    fn arrival_schedule_is_a_fixed_timetable() {
        // 4 workers sharing 1000 fps -> one arrival per 4ms per worker.
        let mut sched = ArrivalSchedule::new(4_000_000);
        assert_eq!(sched.pop_due(0), Some(0));
        assert_eq!(sched.pop_due(0), None, "next arrival is not due yet");
        assert_eq!(sched.next_due(), 4_000_000);
        // Arrivals missed while the worker was busy all surface, stamped
        // with their scheduled (not actual) times.
        assert_eq!(sched.pop_due(12_000_000), Some(4_000_000));
        assert_eq!(sched.pop_due(12_000_000), Some(8_000_000));
        assert_eq!(sched.pop_due(12_000_000), Some(12_000_000));
        assert_eq!(sched.pop_due(12_000_000), None);
    }

    /// The coordinated-omission guard: a server that stalls for 100ms under
    /// 1ms-interval open-loop load must report ~50ms median latency (the
    /// queueing delay of the backlogged arrivals), not the ~0 a closed-loop
    /// measurement — which would simply stop sending — would report.
    #[test]
    fn open_loop_latency_counts_queueing_delay() {
        let mut sched = ArrivalSchedule::new(1_000_000); // 1ms
        let stall_ns: u64 = 100_000_000; // server answers nothing until t=100ms
        let mut scheduled = Vec::new();
        while let Some(s) = sched.pop_due(stall_ns) {
            scheduled.push(s);
        }
        assert_eq!(scheduled.len(), 101, "arrivals at t=0ms..=100ms inclusive");
        // Every backlogged arrival completes at t=100ms; latency is
        // measured from its scheduled stamp.
        let latency = Histogram::new();
        for &s in &scheduled {
            latency.record_ns(stall_ns - s);
        }
        let snap = latency.snapshot();
        let p50 = snap.quantile_ns(0.50);
        assert!(
            p50 >= 40_000_000,
            "median must reflect ~50ms queueing delay, got {p50}ns"
        );
        let p999 = snap.quantile_ns(0.999);
        assert!(
            p999 >= 90_000_000,
            "tail must reflect the full stall, got {p999}ns"
        );
    }
}
