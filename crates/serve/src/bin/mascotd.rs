//! `mascotd` — the sharded MASCOT prediction server.
//!
//! ```text
//! mascotd [--addr HOST:PORT] [--predictor KIND] [--shards N]
//!         [--queue-depth N] [--max-batch N]
//!         [--replay TRACE] [--audit] [--port-file PATH]
//! ```
//!
//! `--replay` warms every shard by replaying a trace as training traffic
//! before the server starts accepting connections. The argument is either
//! a path to an `.mtrc` file (see `mascot_sim::codec`) or the name of a
//! built-in workload profile (e.g. `perlbench2`), which is generated on
//! the fly.
//!
//! `--audit` (requires `--replay`) cross-checks the replay end to end: the
//! trace must validate, its dependence annotations must agree with an
//! independent re-derivation (`mascot_audit::renormalize`), and after the
//! replay every load must be accounted for (`applied + stale == loads`).
//! Any mismatch is fatal before the server accepts a single connection.
//!
//! `--port-file` writes the bound address (one line) once the listener is
//! up — scripts bind port 0 and discover the real port from the file.

use std::process::ExitCode;

use mascot_predictors::PredictorKind;
use mascot_serve::{replay_trace, ServeConfig, Server};
use mascot_sim::uop::Trace;

/// Uops generated when `--replay` names a workload profile.
const REPLAY_GEN_UOPS: usize = 150_000;
/// Seed for generated replay traces.
const REPLAY_GEN_SEED: u64 = 2025;

struct Args {
    cfg: ServeConfig,
    replay: Option<String>,
    audit: bool,
    port_file: Option<String>,
}

fn usage() -> &'static str {
    "usage: mascotd [--addr HOST:PORT] [--predictor KIND] [--shards N]\n\
    \x20              [--queue-depth N] [--max-batch N]\n\
    \x20              [--replay TRACE.mtrc|WORKLOAD] [--audit] [--port-file PATH]\n\
    KIND is a predictor label (default: mascot); see `mascot-loadgen --help`.\n\
    --audit validates the replay trace and its accounting (requires --replay)."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServeConfig::default(),
        replay: None,
        audit: false,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = value("--addr")?,
            "--predictor" => {
                args.cfg.kind = value("--predictor")?
                    .parse::<PredictorKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => {
                args.cfg.pool.shards = parse_positive(&value("--shards")?, "--shards")?;
            }
            "--queue-depth" => {
                args.cfg.pool.queue_depth =
                    parse_positive(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--max-batch" => {
                args.cfg.pool.max_batch = parse_positive(&value("--max-batch")?, "--max-batch")?;
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--audit" => args.audit = true,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.audit && args.replay.is_none() {
        return Err("--audit requires --replay".to_string());
    }
    Ok(args)
}

fn parse_positive(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{name} must be a positive integer, got {s:?}"))
}

/// Resolves `--replay`: a readable `.mtrc` file wins; otherwise the name
/// of a built-in workload profile.
fn load_replay_trace(spec_str: &str) -> Result<Trace, String> {
    match std::fs::read(spec_str) {
        Ok(bytes) => mascot_sim::codec::decode(&bytes)
            .map_err(|e| format!("failed to decode {spec_str}: {e}")),
        Err(read_err) => match mascot_workloads::spec::profile(spec_str) {
            Some(profile) => Ok(mascot_workloads::generator::generate(
                &profile,
                REPLAY_GEN_SEED,
                REPLAY_GEN_UOPS,
            )),
            None => Err(format!(
                "--replay {spec_str:?} is neither a readable trace ({read_err}) \
                 nor a known workload profile"
            )),
        },
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mascotd: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let server = match Server::bind(&args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mascotd: failed to bind {}: {e}", args.cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "mascotd: {} x{} shards on {addr}",
        args.cfg.kind.label(),
        args.cfg.pool.shards
    );

    if let Some(spec_str) = &args.replay {
        let trace = match load_replay_trace(spec_str) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mascotd: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.audit {
            if let Err(e) = trace.validate() {
                eprintln!("mascotd: audit: replay trace is invalid: {e}");
                return ExitCode::FAILURE;
            }
            // The annotations must match an independent re-derivation from
            // the trace's own addresses (same check the shrinker relies on).
            let renorm = mascot_audit::renormalize(&trace);
            if renorm.uops != trace.uops {
                eprintln!(
                    "mascotd: audit: replay trace dependence annotations disagree \
                     with re-derivation (corrupt or stale .mtrc?)"
                );
                return ExitCode::FAILURE;
            }
        }
        let report = replay_trace(server.pool(), &trace);
        eprintln!(
            "mascotd: replayed {} uops ({} loads, {} trained, {} stale) in {} segments",
            report.uops, report.loads, report.applied, report.stale, report.segments
        );
        if args.audit && report.applied + report.stale != report.loads {
            eprintln!(
                "mascotd: audit: replay accounting broken: {} applied + {} stale != {} loads",
                report.applied, report.stale, report.loads
            );
            return ExitCode::FAILURE;
        }
    }

    // Written only after bind (and replay warm-up): the file appearing
    // means the server is ready for connections.
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("mascotd: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let stats = server.run();
    eprintln!(
        "mascotd: drained; {} requests ({} predicts, {} trains, {} stale, {} rejected)",
        stats.total_requests(),
        stats.total_predicts(),
        stats.total_trains(),
        stats.shards.iter().map(|s| s.stale_trains).sum::<u64>(),
        stats.total_rejected(),
    );
    ExitCode::SUCCESS
}
