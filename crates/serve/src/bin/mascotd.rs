//! `mascotd` — the sharded MASCOT prediction server.
//!
//! ```text
//! mascotd [--addr HOST:PORT] [--predictor KIND] [--shards N]
//!         [--queue-depth N] [--max-batch N]
//!         [--replay TRACE] [--audit] [--port-file PATH]
//!         [--snapshot-dir DIR]
//! ```
//!
//! `--replay` warms every shard by replaying a trace as training traffic
//! before the server starts accepting connections. The argument is either
//! a path to an `.mtrc` file (see `mascot_sim::codec`) or the name of a
//! built-in workload profile (e.g. `perlbench2`), which is generated on
//! the fly.
//!
//! `--audit` (requires `--replay`) cross-checks the replay end to end: the
//! trace must validate, its dependence annotations must agree with an
//! independent re-derivation (`mascot_audit::renormalize`), and after the
//! replay every load must be accounted for (`applied + stale == loads`).
//! Any mismatch is fatal before the server accepts a single connection.
//! Audit mode also runs the shard pool with `strict_tickets`: a
//! pending-table eviction (an in-flight prediction recycled before its
//! train arrived) is a shard-fatal error instead of an `evicted_pending`
//! statistic, so an audited run cannot silently train on a diverged
//! stream (DESIGN.md §12).
//!
//! `--port-file` writes the bound address (one line) once the listener is
//! registered with the event loop's poller — i.e. once the server is
//! actually accepting — so scripts can bind port 0, poll for the file, and
//! connect immediately.
//!
//! `--snapshot-dir DIR` makes the predictor state durable across restarts:
//! on boot, `DIR/mascot.snap` (when present) is decoded fail-closed and
//! every shard warm-starts from it — resharding through a union merge when
//! the saved shard count differs from `--shards` (DESIGN.md §10) — and on
//! graceful shutdown the final state of every shard is checkpointed back
//! atomically (write to a temp file, fsync, rename, fsync the directory),
//! so a crash mid-checkpoint leaves the previous snapshot intact.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_serve::{predictors_from_snapshot, replay_trace, unix_now_s, ServeConfig, Server};
use mascot_sim::uop::Trace;
use mascot_snapshot::SnapshotFile;

/// Snapshot file name inside `--snapshot-dir`.
const SNAP_FILE: &str = "mascot.snap";

/// Uops generated when `--replay` names a workload profile.
const REPLAY_GEN_UOPS: usize = 150_000;
/// Seed for generated replay traces.
const REPLAY_GEN_SEED: u64 = 2025;

struct Args {
    cfg: ServeConfig,
    replay: Option<String>,
    audit: bool,
    port_file: Option<String>,
    snapshot_dir: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: mascotd [--addr HOST:PORT] [--predictor KIND] [--shards N]\n\
    \x20              [--queue-depth N] [--max-batch N]\n\
    \x20              [--replay TRACE.mtrc|WORKLOAD] [--audit] [--port-file PATH]\n\
    \x20              [--snapshot-dir DIR]\n\
    KIND is a predictor label (default: mascot); see `mascot-loadgen --help`.\n\
    --audit validates the replay trace and its accounting (requires --replay)\n\
    \x20       and makes pending-ticket evictions a hard error (strict_tickets).\n\
    --snapshot-dir restores DIR/mascot.snap on boot (when present) and\n\
    checkpoints the final predictor state there on graceful shutdown."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServeConfig::default(),
        replay: None,
        audit: false,
        port_file: None,
        snapshot_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = value("--addr")?,
            "--predictor" => {
                args.cfg.kind = value("--predictor")?
                    .parse::<PredictorKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => {
                args.cfg.pool.shards = parse_positive(&value("--shards")?, "--shards")?;
            }
            "--queue-depth" => {
                args.cfg.pool.queue_depth =
                    parse_positive(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--max-batch" => {
                args.cfg.pool.max_batch = parse_positive(&value("--max-batch")?, "--max-batch")?;
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--audit" => args.audit = true,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir")?)),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.audit && args.replay.is_none() {
        return Err("--audit requires --replay".to_string());
    }
    // Audit runs refuse to silently drop in-flight predictions: a
    // pending-table eviction becomes a shard-fatal error instead of a
    // stale-train statistic.
    args.cfg.pool.strict_tickets = args.audit;
    Ok(args)
}

fn parse_positive(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{name} must be a positive integer, got {s:?}"))
}

/// Resolves `--replay`: a readable `.mtrc` file wins; otherwise the name
/// of a built-in workload profile.
fn load_replay_trace(spec_str: &str) -> Result<Trace, String> {
    match std::fs::read(spec_str) {
        Ok(bytes) => mascot_sim::codec::decode(&bytes)
            .map_err(|e| format!("failed to decode {spec_str}: {e}")),
        Err(read_err) => match mascot_workloads::spec::profile(spec_str) {
            Some(profile) => Ok(mascot_workloads::generator::generate(
                &profile,
                REPLAY_GEN_SEED,
                REPLAY_GEN_UOPS,
            )),
            None => Err(format!(
                "--replay {spec_str:?} is neither a readable trace ({read_err}) \
                 nor a known workload profile"
            )),
        },
    }
}

/// The boot-time warm start, when `--snapshot-dir` holds a snapshot:
/// decoded fail-closed, kind-checked, and resharded onto the configured
/// shard count. Returns the per-shard predictors plus the observability
/// numbers (per-shard restored entries, snapshot age, restart generation).
struct WarmStart {
    predictors: Vec<AnyPredictor>,
    restored_per_shard: Vec<u64>,
    snapshot_age_s: u64,
    restarts: u64,
}

/// Loads and validates `DIR/mascot.snap`. `Ok(None)` when the file does not
/// exist (cold start); `Err` when it exists but is unusable — a corrupt or
/// mismatched snapshot must abort the boot, never silently start cold.
fn load_warm_start(dir: &Path, cfg: &ServeConfig) -> Result<Option<WarmStart>, String> {
    let path = dir.join(SNAP_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let file = SnapshotFile::decode(&bytes)
        .map_err(|e| format!("{} is corrupt: {e}", path.display()))?;
    let expected = cfg.kind.label();
    if file.kind_label != expected {
        return Err(format!(
            "{} holds {:?} state but this server runs {:?}",
            path.display(),
            file.kind_label,
            expected
        ));
    }
    let predictors = predictors_from_snapshot(&file.shards, cfg.pool.shards)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let restored_per_shard = predictors.iter().map(AnyPredictor::entry_count).collect();
    Ok(Some(WarmStart {
        predictors,
        restored_per_shard,
        snapshot_age_s: unix_now_s().saturating_sub(file.created_unix_s),
        restarts: file.restarts + 1,
    }))
}

/// Writes the snapshot durably: temp file in the same directory, fsync,
/// rename over the final name, fsync the directory. A crash at any point
/// leaves either the old snapshot or the new one, never a torn file.
fn write_snapshot_atomic(dir: &Path, bytes: &[u8]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{SNAP_FILE}.tmp"));
    let path = dir.join(SNAP_FILE);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mascotd: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let warm = match args.snapshot_dir.as_deref() {
        Some(dir) => match load_warm_start(dir, &args.cfg) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("mascotd: snapshot restore failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut server = match Server::bind_with(
        &args.cfg,
        warm.as_ref().map(|w| w.predictors.clone()),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mascotd: failed to bind {}: {e}", args.cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "mascotd: {} x{} shards on {addr}",
        args.cfg.kind.label(),
        args.cfg.pool.shards
    );

    // The restart generation survives the run (and any wire-level Restore
    // overwrites it); capture one metrics handle for the final checkpoint.
    let restarts_metric = std::sync::Arc::clone(&server.pool().metrics()[0]);
    if let Some(w) = &warm {
        for (m, &restored) in server.pool().metrics().iter().zip(&w.restored_per_shard) {
            m.restored_entries.store(restored, Ordering::Relaxed);
        }
        server.pool().set_warm_start(w.snapshot_age_s, w.restarts);
        eprintln!(
            "mascotd: warm start: restored_entries={} snapshot_age_s={} restarts={}",
            w.restored_per_shard.iter().sum::<u64>(),
            w.snapshot_age_s,
            w.restarts
        );
    }

    if let Some(spec_str) = &args.replay {
        let trace = match load_replay_trace(spec_str) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mascotd: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.audit {
            if let Err(e) = trace.validate() {
                eprintln!("mascotd: audit: replay trace is invalid: {e}");
                return ExitCode::FAILURE;
            }
            // The annotations must match an independent re-derivation from
            // the trace's own addresses (same check the shrinker relies on).
            let renorm = mascot_audit::renormalize(&trace);
            if renorm.uops != trace.uops {
                eprintln!(
                    "mascotd: audit: replay trace dependence annotations disagree \
                     with re-derivation (corrupt or stale .mtrc?)"
                );
                return ExitCode::FAILURE;
            }
        }
        let report = replay_trace(server.pool(), &trace);
        eprintln!(
            "mascotd: replayed {} uops ({} loads, {} trained, {} stale) in {} segments",
            report.uops, report.loads, report.applied, report.stale, report.segments
        );
        if args.audit && report.applied + report.stale != report.loads {
            eprintln!(
                "mascotd: audit: replay accounting broken: {} applied + {} stale != {} loads",
                report.applied, report.stale, report.loads
            );
            return ExitCode::FAILURE;
        }
    }

    // Written only once the listener is registered with the poller (and
    // replay warm-up is done): the file appearing means the event loop is
    // actually accepting, not merely bound — a poll-for-the-file script
    // can connect the instant it reads the address.
    if let Some(path) = args.port_file.clone() {
        server.set_on_ready(Box::new(move || {
            if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
                eprintln!("mascotd: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }));
    }

    let (stats, payloads) = server.run_collecting(args.snapshot_dir.is_some());
    eprintln!(
        "mascotd: drained; {} requests ({} predicts, {} trains, {} stale, {} rejected)",
        stats.total_requests(),
        stats.total_predicts(),
        stats.total_trains(),
        stats.shards.iter().map(|s| s.stale_trains).sum::<u64>(),
        stats.total_rejected(),
    );

    if let Some(dir) = &args.snapshot_dir {
        let file = SnapshotFile {
            kind_label: args.cfg.kind.label().into_owned(),
            created_unix_s: unix_now_s(),
            restarts: restarts_metric.restarts.load(Ordering::Relaxed),
            shards: payloads,
        };
        match write_snapshot_atomic(dir, &file.encode()) {
            Ok(path) => eprintln!(
                "mascotd: checkpointed {} shards to {}",
                file.shards.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("mascotd: checkpoint failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
