//! End-to-end loopback tests for `mascot-serve`: a real `mascotd` server on
//! an ephemeral port, real TCP clients, mixed predict/train traffic from
//! multiple threads, and protocol-level rejection of malformed frames.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_serve::shard::ShardPoolConfig;
use mascot_serve::wire::{self, Opcode, PredictItem, Response, TrainItem, HEADER_LEN, MAGIC};
use mascot_serve::{Client, ServeConfig, Served, Server};
use mascot_snapshot::SnapshotFile;
use mascot::prediction::{
    BypassClass, LoadOutcome, MemDepPrediction, ObservedDependence, StoreDistance,
};

fn spawn_server(shards: usize) -> (String, std::thread::JoinHandle<wire::StatsReport>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        kind: PredictorKind::Mascot,
        pool: ShardPoolConfig {
            shards,
            ..ShardPoolConfig::default()
        },
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let (addr, handle) = server.spawn();
    (addr.to_string(), handle)
}

/// Thousands of mixed predict/train requests from several client threads;
/// every ticket is trained back, and the server-side counters must account
/// for every item exactly.
#[test]
fn loopback_mixed_traffic_accounts_for_every_item() {
    const THREADS: usize = 4;
    const BATCHES: usize = 50;
    const BATCH: usize = 32;

    let (addr, handle) = spawn_server(4);
    let sent_predicts = Arc::new(AtomicU64::new(0));
    let sent_trains = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            let sent_predicts = Arc::clone(&sent_predicts);
            let sent_trains = Arc::clone(&sent_trains);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for b in 0..BATCHES {
                    let items: Vec<PredictItem> = (0..BATCH)
                        .map(|i| PredictItem {
                            pc: 0x1000 + ((t * BATCHES * BATCH + b * BATCH + i) as u64 % 509) * 4,
                            store_seq: (b * BATCH + i) as u64,
                        })
                        .collect();
                    // One closed-loop frame per connection can never fill a
                    // 256-deep shard queue, so Busy here is a bug.
                    let replies = match client.predict(items.clone()).expect("predict") {
                        Served::Ok(replies) => replies,
                        Served::Busy => panic!("unexpected Busy under closed-loop load"),
                    };
                    assert_eq!(replies.len(), items.len());
                    sent_predicts.fetch_add(items.len() as u64, Ordering::Relaxed);

                    let trains: Vec<TrainItem> = items
                        .iter()
                        .zip(&replies)
                        .map(|(item, r)| TrainItem {
                            ticket: r.ticket,
                            pc: item.pc,
                            outcome: LoadOutcome::independent(),
                        })
                        .collect();
                    match client.train(trains).expect("train") {
                        Served::Ok((applied, stale)) => {
                            assert_eq!(applied as usize, BATCH, "every ticket fresh");
                            assert_eq!(stale, 0);
                        }
                        Served::Busy => panic!("unexpected Busy under closed-loop load"),
                    }
                    sent_trains.fetch_add(BATCH as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let predicts = sent_predicts.load(Ordering::Relaxed);
    let trains = sent_trains.load(Ordering::Relaxed);
    assert_eq!(predicts, (THREADS * BATCHES * BATCH) as u64);

    let mut control = Client::connect(&addr).expect("control connect");
    let stats = control.stats().expect("stats");
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.total_predicts(), predicts);
    assert_eq!(stats.total_trains(), trains);
    assert_eq!(stats.total_requests(), predicts + trains);
    assert_eq!(stats.total_rejected(), 0);
    // Every train found its pending ticket.
    assert_eq!(stats.shards.iter().map(|s| s.stale_trains).sum::<u64>(), 0);
    // Work spread over all shards, not funnelled into one.
    for s in &stats.shards {
        assert!(s.requests > 0, "an idle shard means broken routing");
    }

    let served = control.shutdown().expect("shutdown");
    assert_eq!(served, predicts + trains);

    // The drained report must agree with the last live snapshot: shutdown
    // may not lose in-flight work.
    let drained = handle.join().expect("server thread");
    assert_eq!(drained.total_requests(), stats.total_requests());
    assert_eq!(drained.total_predicts(), stats.total_predicts());
    assert_eq!(drained.total_trains(), stats.total_trains());
}

/// PCs warmed and fingerprinted by the snapshot e2e test.
const SNAP_PCS: u64 = 64;
const SNAP_PC_BASE: u64 = 0x2000;

/// Warms the server with deterministic predict/train traffic.
fn warm_over_wire(client: &mut Client, rounds: usize) {
    for round in 0..rounds {
        let items: Vec<PredictItem> = (0..SNAP_PCS)
            .map(|i| PredictItem {
                pc: SNAP_PC_BASE + i * 4,
                store_seq: (round as u64) * SNAP_PCS + i + 8,
            })
            .collect();
        let replies = match client.predict(items.clone()).expect("predict") {
            Served::Ok(replies) => replies,
            Served::Busy => panic!("unexpected Busy under closed-loop load"),
        };
        let trains: Vec<TrainItem> = items
            .iter()
            .zip(&replies)
            .map(|(item, r)| TrainItem {
                ticket: r.ticket,
                pc: item.pc,
                outcome: LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(3).expect("in range"),
                    class: BypassClass::DirectBypass,
                    store_pc: item.pc.wrapping_sub(8),
                    branches_between: 0,
                }),
            })
            .collect();
        match client.train(trains).expect("train") {
            Served::Ok(_) => {}
            Served::Busy => panic!("unexpected Busy under closed-loop load"),
        }
    }
}

/// What the server predicts for every warmed PC at a fixed store sequence.
fn wire_fingerprint(client: &mut Client) -> Vec<MemDepPrediction> {
    let items: Vec<PredictItem> = (0..SNAP_PCS)
        .map(|i| PredictItem {
            pc: SNAP_PC_BASE + i * 4,
            store_seq: 1 << 40,
        })
        .collect();
    match client.predict(items).expect("fingerprint predict") {
        Served::Ok(replies) => replies.iter().map(|r| r.prediction).collect(),
        Served::Busy => panic!("unexpected Busy under closed-loop load"),
    }
}

/// A snapshot taken over the wire from a warmed 4-shard server restores
/// into a cold 3-shard server (union reshard) with every prediction
/// intact, and the warm counters become visible through `Stats`.
#[test]
fn wire_snapshot_restores_across_shard_counts() {
    let (addr_a, handle_a) = spawn_server(4);
    let mut client = Client::connect(&addr_a).expect("connect");
    warm_over_wire(&mut client, 30);
    let before = wire_fingerprint(&mut client);
    let snap = client.snapshot().expect("snapshot");
    // The blob is a valid container with one payload per shard.
    let file = SnapshotFile::decode(&snap).expect("well-formed container");
    assert_eq!(file.kind_label, PredictorKind::Mascot.label());
    assert_eq!(file.shards.len(), 4);
    client.shutdown().expect("shutdown");
    handle_a.join().expect("server thread");

    let (addr_b, handle_b) = spawn_server(3);
    let mut client = Client::connect(&addr_b).expect("connect");
    let restored = client.restore(snap).expect("restore");
    assert!(restored > 0, "a warmed snapshot restores entries");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total_restored(), restored);
    for shard in &stats.shards {
        assert!(shard.restored_entries > 0, "every shard warm-started");
    }
    assert_eq!(wire_fingerprint(&mut client), before);
    client.shutdown().expect("shutdown");
    handle_b.join().expect("server thread");
}

/// Restore fails closed over the wire: garbage bytes and a kind-mismatched
/// container are both rejected with an `Error`, the connection stays
/// usable, and the server's state is untouched.
#[test]
fn wire_restore_fails_closed() {
    let (addr, handle) = spawn_server(2);
    let mut client = Client::connect(&addr).expect("connect");
    warm_over_wire(&mut client, 5);
    let before = wire_fingerprint(&mut client);

    assert!(client.restore(vec![0xde, 0xad, 0xbe, 0xef]).is_err());

    // A well-formed container from the wrong predictor kind.
    let phast = PredictorKind::Phast.build();
    let wrong_kind = SnapshotFile {
        kind_label: PredictorKind::Phast.label().into_owned(),
        created_unix_s: 0,
        restarts: 0,
        shards: vec![AnyPredictor::snapshot_bytes(&phast); 2],
    };
    assert!(client.restore(wrong_kind.encode()).is_err());

    // Same connection, state unchanged: fail-closed means nothing was
    // applied before the rejection.
    assert_eq!(wire_fingerprint(&mut client), before);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total_restored(), 0);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// The event-loop stressor: 256 concurrent connections, each delivering
/// two pipelined predict frames split at a per-connection byte offset —
/// collectively covering every header and body boundary of the two-frame
/// stream, including mid-header and the frame seam — with a pause between
/// the halves so the server must hold partial frames across readiness
/// events. Every request is answered, in order, with exact server-side
/// accounting: nothing lost, nothing rejected.
#[test]
fn concurrent_partial_writes_lose_nothing() {
    const CONNS: usize = 256;
    const BATCH: usize = 3;

    // Deep queues: all 512 frames land in one burst once the second halves
    // are written, and the exact accounting below requires zero Busy.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        kind: PredictorKind::Mascot,
        pool: ShardPoolConfig {
            shards: 2,
            queue_depth: 4096,
            ..ShardPoolConfig::default()
        },
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let (addr, handle) = server.spawn();
    let addr = addr.to_string();

    // Each connection's byte stream: two predict frames, back to back.
    let mut streams: Vec<(TcpStream, Vec<u8>, usize)> = (0..CONNS)
        .map(|i| {
            let frame_of = |k: usize| {
                let items: Vec<PredictItem> = (0..BATCH)
                    .map(|j| PredictItem {
                        pc: 0x9000 + ((i * 7 + j) as u64 % 251) * 4,
                        store_seq: (i * 2 + k) as u64,
                    })
                    .collect();
                wire::Request::Predict(items)
                    .encode_frame()
                    .expect("encodable batch")
            };
            let mut bytes = frame_of(0);
            bytes.extend_from_slice(&frame_of(1));
            let split = (i % (bytes.len() - 1)) + 1;
            let stream = TcpStream::connect(&addr).expect("connect");
            (stream, bytes, split)
        })
        .collect();

    // Phase 1: first halves only, across all connections.
    for (stream, bytes, split) in &mut streams {
        stream.write_all(&bytes[..*split]).expect("first half");
        stream.flush().expect("flush");
    }
    // The event loop must park on the incomplete frames without
    // responding, closing, or confusing them across connections.
    std::thread::sleep(std::time::Duration::from_millis(30));
    // Phase 2: the remainders.
    for (stream, bytes, split) in &mut streams {
        stream.write_all(&bytes[*split..]).expect("second half");
        stream.flush().expect("flush");
    }

    // Exactly two in-order Predict responses per connection.
    for (stream, _, _) in &mut streams {
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("set timeout");
        for _ in 0..2 {
            let (code, payload) = wire::read_frame(stream)
                .expect("well-framed reply")
                .expect("reply before close");
            let resp = Response::decode(Opcode::Predict, code, &payload).expect("decode");
            let Response::Predict(replies) = resp else {
                panic!("expected predictions, got {resp:?}");
            };
            assert_eq!(replies.len(), BATCH);
        }
    }
    drop(streams);

    let mut control = Client::connect(&addr).expect("control connect");
    let stats = control.stats().expect("stats");
    assert_eq!(
        stats.total_predicts(),
        (CONNS * 2 * BATCH) as u64,
        "every item answered exactly once"
    );
    assert_eq!(stats.total_rejected(), 0, "deep queues must absorb the burst");
    control.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A frame with the wrong magic gets an `Error` response and the
/// connection is dropped; the server keeps serving other clients.
#[test]
fn bad_magic_is_rejected_without_killing_the_server() {
    let (addr, handle) = spawn_server(2);

    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let mut frame = vec![0u8; HEADER_LEN];
    frame[..4].copy_from_slice(b"XSRV");
    raw.write_all(&frame).expect("write bad magic");
    let (code, payload) = wire::read_frame(&mut raw)
        .expect("error reply is well-framed")
        .expect("reply before close");
    let resp = Response::decode(Opcode::Predict, code, &payload).expect("decode");
    let Response::Error(msg) = resp else {
        panic!("expected Error, got {resp:?}");
    };
    assert!(msg.contains("magic"), "unhelpful error: {msg}");
    // The stream is unrecoverable: the server hangs up after reporting.
    assert!(matches!(wire::read_frame(&mut raw), Ok(None)));

    // A fresh, well-behaved client still gets service.
    let mut client = Client::connect(&addr).expect("connect after abuse");
    let replies = match client
        .predict(vec![PredictItem { pc: 0x40, store_seq: 1 }])
        .expect("predict")
    {
        Served::Ok(replies) => replies,
        Served::Busy => panic!("unexpected Busy"),
    };
    assert_eq!(replies.len(), 1);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A frame with an unknown protocol version is rejected the same way.
#[test]
fn bad_version_is_rejected() {
    let (addr, handle) = spawn_server(2);

    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let mut frame = vec![0u8; HEADER_LEN];
    frame[..4].copy_from_slice(&MAGIC);
    frame[4] = 99; // future version
    raw.write_all(&frame).expect("write bad version");
    let (code, payload) = wire::read_frame(&mut raw)
        .expect("error reply is well-framed")
        .expect("reply before close");
    let resp = Response::decode(Opcode::Predict, code, &payload).expect("decode");
    let Response::Error(msg) = resp else {
        panic!("expected Error, got {resp:?}");
    };
    assert!(msg.contains("version"), "unhelpful error: {msg}");
    assert!(matches!(wire::read_frame(&mut raw), Ok(None)));

    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A well-framed but malformed payload answers `Error` and the connection
/// stays usable — the stream is still in sync.
#[test]
fn malformed_payload_keeps_the_connection_alive() {
    let (addr, handle) = spawn_server(2);

    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    // Predict frame claiming 2 items but carrying bytes for none.
    wire::write_frame(&mut raw, Opcode::Predict as u8, &2u16.to_le_bytes())
        .expect("write short batch");
    let (code, payload) = wire::read_frame(&mut raw)
        .expect("error reply is well-framed")
        .expect("reply before close");
    let resp = Response::decode(Opcode::Predict, code, &payload).expect("decode");
    assert!(matches!(resp, Response::Error(_)), "got {resp:?}");

    // Same socket, valid request: still served.
    let req = wire::Request::Predict(vec![PredictItem { pc: 0x80, store_seq: 7 }]);
    raw.write_all(&req.encode_frame().expect("encodable batch"))
        .expect("write valid");
    let (code, payload) = wire::read_frame(&mut raw)
        .expect("well-framed")
        .expect("reply");
    let resp = Response::decode(Opcode::Predict, code, &payload).expect("decode");
    assert!(matches!(resp, Response::Predict(_)), "got {resp:?}");

    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
