//! Cross-crate integration tests: the full stack (workload generator →
//! simulator → predictors) must reproduce the paper's qualitative results.
//!
//! These use shortened traces for test-suite speed; the full experiments
//! live in the `mascot-bench` binaries.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, run_one, run_suite, PredictorKind,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

const TEST_UOPS: usize = 60_000;
const SEED: u64 = 2025;

fn quick_results(kinds: &[PredictorKind]) -> Vec<mascot_bench::RunResult> {
    let profiles = spec::quick_suite();
    run_suite(&profiles, kinds, &CoreConfig::golden_cove(), TEST_UOPS, SEED)
}

/// Every predictor must run every benchmark to completion with a sane IPC.
#[test]
fn all_predictors_complete_all_benchmarks() {
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::PerfectMdpSmb,
        PredictorKind::StoreSets,
        PredictorKind::NoSq,
        PredictorKind::Phast,
        PredictorKind::MascotMdp,
        PredictorKind::Mascot,
        PredictorKind::MascotOpt(4),
        PredictorKind::TageNoNd,
    ];
    let results = quick_results(&kinds);
    assert_eq!(results.len(), 4 * kinds.len());
    for r in &results {
        assert!(
            r.stats.committed_uops >= TEST_UOPS as u64,
            "{}/{} committed {}",
            r.benchmark,
            r.predictor,
            r.stats.committed_uops
        );
        assert!(
            r.stats.ipc() > 0.05 && r.stats.ipc() < 6.0,
            "{}/{} ipc {}",
            r.benchmark,
            r.predictor,
            r.stats.ipc()
        );
    }
}

/// The oracles never mispredict in the squash-causing direction.
#[test]
fn oracles_never_squash() {
    let results = quick_results(&[PredictorKind::PerfectMdp, PredictorKind::PerfectMdpSmb]);
    for r in &results {
        assert_eq!(r.stats.mem_order_squashes, 0, "{}/{}", r.benchmark, r.predictor);
        assert_eq!(r.stats.smb_squashes, 0, "{}/{}", r.benchmark, r.predictor);
        assert_eq!(r.stats.missed_dependencies, 0, "{}/{}", r.benchmark, r.predictor);
    }
}

/// Fig. 7's ordering: MASCOT (MDP+SMB) beats PHAST on the geometric mean
/// and sits between perfect MDP and the perfect MDP+SMB ceiling.
#[test]
fn mascot_beats_phast_and_respects_oracle_bounds() {
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::PerfectMdpSmb,
        PredictorKind::Phast,
        PredictorKind::Mascot,
    ];
    let results = quick_results(&kinds);
    let benches = benchmarks(&results);
    let mascot = geomean_normalized_ipc(&results, &benches, "mascot", "perfect-mdp").unwrap();
    let phast = geomean_normalized_ipc(&results, &benches, "phast", "perfect-mdp").unwrap();
    let ceiling =
        geomean_normalized_ipc(&results, &benches, "perfect-mdp-smb", "perfect-mdp").unwrap();
    assert!(mascot > phast, "mascot {mascot} must beat phast {phast}");
    assert!(
        mascot <= ceiling * 1.002,
        "mascot {mascot} cannot beat the SMB ceiling {ceiling}"
    );
    assert!(ceiling > 1.0, "bypassing must help somewhere: {ceiling}");
}

/// Fig. 8's headline: MASCOT's mispredictions are a small fraction of
/// PHAST's and NoSQ's, with false dependencies cut the hardest.
#[test]
fn mascot_slashes_mispredictions() {
    let kinds = [PredictorKind::NoSq, PredictorKind::Phast, PredictorKind::Mascot];
    let results = quick_results(&kinds);
    let total = |p: &str| -> u64 {
        results
            .iter()
            .filter(|r| r.predictor == p)
            .map(|r| r.stats.total_mispredictions())
            .sum()
    };
    let false_deps = |p: &str| -> u64 {
        results
            .iter()
            .filter(|r| r.predictor == p)
            .map(|r| r.stats.false_dependencies)
            .sum()
    };
    // NoSQ's GShare-based predictor mispredicts heavily; MASCOT stays
    // within striking distance of PHAST (on short traces warmup noise can
    // put either slightly ahead) while slashing NoSQ's error volume.
    assert!(
        total("mascot") * 5 < total("nosq"),
        "mascot {} vs nosq {}",
        total("mascot"),
        total("nosq")
    );
    assert!(
        total("mascot") < total("phast") * 2,
        "mascot {} vs phast {}",
        total("mascot"),
        total("phast")
    );
    assert!(
        false_deps("mascot") * 4 < false_deps("nosq"),
        "false deps: mascot {} vs nosq {}",
        false_deps("mascot"),
        false_deps("nosq")
    );
}

/// Fig. 11: the no-non-dependence ablation accumulates far more false
/// dependencies than MASCOT on alias-heavy workloads.
#[test]
fn ablation_accumulates_false_dependencies() {
    let profile = spec::profile("perlbench2").unwrap();
    let core = CoreConfig::golden_cove();
    let mascot = run_one(&profile, PredictorKind::Mascot, &core, TEST_UOPS, SEED);
    let ablation = run_one(&profile, PredictorKind::TageNoNd, &core, TEST_UOPS, SEED);
    assert!(
        ablation.stats.false_dependencies > mascot.stats.false_dependencies.max(1) * 5,
        "ablation {} vs mascot {}",
        ablation.stats.false_dependencies,
        mascot.stats.false_dependencies
    );
}

/// Table II: predictor storage matches the paper's sizes.
#[test]
fn storage_matches_table_ii() {
    let sizes = [
        (PredictorKind::StoreSets, 18.5),
        (PredictorKind::NoSq, 19.0),
        (PredictorKind::Phast, 14.5),
        (PredictorKind::Mascot, 14.0),
        (PredictorKind::MascotOpt(0), 11.81),
        (PredictorKind::MascotOpt(4), 10.125),
    ];
    use mascot::MemDepPredictor;
    for (kind, kib) in sizes {
        let p = kind.build();
        assert!(
            (p.storage_kib() - kib).abs() < 0.02,
            "{}: {} KiB vs expected {kib}",
            kind.label(),
            p.storage_kib()
        );
    }
}

/// Simulation results are bit-deterministic for a fixed seed.
#[test]
fn runs_are_deterministic() {
    let profile = spec::profile("mcf").unwrap();
    let core = CoreConfig::golden_cove();
    let a = run_one(&profile, PredictorKind::Mascot, &core, 30_000, 7);
    let b = run_one(&profile, PredictorKind::Mascot, &core, 30_000, 7);
    assert_eq!(a.stats, b.stats);
}

/// Fig. 2: alias-heavy and alias-light benchmarks separate as profiled.
#[test]
fn dependence_census_separates_benchmarks() {
    let core = CoreConfig::golden_cove();
    let heavy = run_one(
        &spec::profile("perlbench2").unwrap(),
        PredictorKind::PerfectMdp,
        &core,
        TEST_UOPS,
        SEED,
    );
    let light = run_one(
        &spec::profile("bwaves").unwrap(),
        PredictorKind::PerfectMdp,
        &core,
        TEST_UOPS,
        SEED,
    );
    assert!(
        heavy.stats.dependent_load_fraction() > 0.3,
        "perlbench2: {}",
        heavy.stats.dependent_load_fraction()
    );
    assert!(
        light.stats.dependent_load_fraction() < 0.15,
        "bwaves: {}",
        light.stats.dependent_load_fraction()
    );
    // DirectBypass dominates the dependent classes (Fig. 2's shape).
    assert!(
        heavy.stats.class_direct_bypass
            > heavy.stats.class_offset + heavy.stats.class_mdp_only
    );
}

/// Lion Cove commits the same work at least as fast as Golden Cove for a
/// latency-tolerant workload.
#[test]
fn lion_cove_runs_streaming_workloads_faster() {
    let profile = spec::profile("lbm").unwrap();
    let g = run_one(
        &profile,
        PredictorKind::PerfectMdp,
        &CoreConfig::golden_cove(),
        TEST_UOPS,
        SEED,
    );
    let l = run_one(
        &profile,
        PredictorKind::PerfectMdp,
        &CoreConfig::lion_cove(),
        TEST_UOPS,
        SEED,
    );
    assert!(
        l.stats.ipc() > g.stats.ipc(),
        "lion {} vs golden {}",
        l.stats.ipc(),
        g.stats.ipc()
    );
}
