//! Corrupt-snapshot fuzz over *real* predictor state, and the N→M
//! resharding equivalence property.
//!
//! `crates/snapshot` already fuzzes the bare container over toy payloads;
//! these tests drive warmed predictors through the full stack the serve
//! layer uses (`AnyPredictor::snapshot_bytes` → `SnapshotFile` →
//! `predictors_from_snapshot`) and assert that every corruption — torn
//! writes, bit rot, wrong magic/version, a bad checksum, a smuggled
//! payload of the wrong kind — fails closed, while a clean snapshot
//! reshards onto any target shard count without changing a single
//! prediction.

use mascot::history::{BranchEvent, BranchKind};
use mascot::prediction::{
    BypassClass, LoadOutcome, MemDepPredictor, MemDepPrediction, ObservedDependence,
    StoreDistance,
};
use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_serve::predictors_from_snapshot;
use mascot_snapshot::{SnapError, SnapshotFile};

/// Distinct load PCs the cluster is warmed (and later probed) on.
const NUM_PCS: u64 = 48;
/// Base of the load PC range.
const PC_BASE: u64 = 0x4000;
/// Store sequence used for probes: far past anything dispatched during the
/// warmup, so the answer depends only on table state.
const PROBE_SEQ: u64 = u64::MAX / 2;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Warms `n` predictors the way `n` mascotd shards would be warmed:
/// branches and store dispatches broadcast to every shard (predictor
/// history is global), each load predicted and trained only on the shard
/// that owns its PC.
fn warm_cluster(kind: PredictorKind, n: usize, steps: usize, seed: u64) -> Vec<AnyPredictor> {
    let mut preds: Vec<AnyPredictor> = (0..n).map(|_| kind.build()).collect();
    let mut state = seed | 1;
    let mut store_seq = 0u64;
    for _ in 0..steps {
        if xorshift(&mut state) % 3 == 0 {
            let event = BranchEvent {
                pc: 0x100 + (xorshift(&mut state) % 32) * 4,
                kind: BranchKind::Conditional,
                taken: xorshift(&mut state) % 2 == 0,
                target: 0x800,
            };
            for p in &mut preds {
                p.on_branch(&event);
            }
        }
        if xorshift(&mut state) % 2 == 0 {
            let store_pc = 0x9000 + (xorshift(&mut state) % 16) * 8;
            for p in &mut preds {
                p.on_store_dispatch(store_pc, store_seq);
            }
            store_seq += 1;
        }
        let pc = PC_BASE + (xorshift(&mut state) % NUM_PCS) * 4;
        let owner = owner_of(pc, n);
        let (predicted, meta) = preds[owner].predict(pc, store_seq, None);
        let outcome = if xorshift(&mut state) % 2 == 0 {
            LoadOutcome::dependent(ObservedDependence {
                distance: StoreDistance::new(1 + (xorshift(&mut state) % 7) as u32)
                    .expect("in range"),
                class: BypassClass::DirectBypass,
                store_pc: 0x9000,
                branches_between: (xorshift(&mut state) % 4) as u32,
            })
        } else {
            LoadOutcome::independent()
        };
        preds[owner].train(pc, meta, predicted, &outcome);
    }
    preds
}

/// The shard that owns `pc` in an `n`-shard cluster (any stable total map
/// works for these tests).
fn owner_of(pc: u64, n: usize) -> usize {
    ((pc / 4) % n as u64) as usize
}

/// What the predictor would answer for every warmed PC, probed on a clone
/// so the probe itself cannot perturb LRU state.
fn probe(pred: &AnyPredictor, pcs: impl Iterator<Item = u64>) -> Vec<MemDepPrediction> {
    let mut clone = pred.clone();
    pcs.map(|pc| clone.predict(pc, PROBE_SEQ, None).0).collect()
}

/// A warmed 3-shard container, exactly as `mascotd` would checkpoint it.
fn warm_container(kind: PredictorKind) -> (Vec<AnyPredictor>, SnapshotFile) {
    let preds = warm_cluster(kind, 3, 1_500, 0x5EED);
    let file = SnapshotFile {
        kind_label: kind.label().into_owned(),
        created_unix_s: 1_754_000_000,
        restarts: 2,
        shards: preds.iter().map(AnyPredictor::snapshot_bytes).collect(),
    };
    (preds, file)
}

/// Indices to corrupt: every byte of a small buffer, a bounded sample of a
/// large one (always covering both ends, where the header and checksum
/// live).
fn sample_indices(len: usize) -> Vec<usize> {
    let step = (len / 400).max(1);
    let mut idxs: Vec<usize> = (0..len).step_by(step).collect();
    idxs.extend((0..len.min(24)).chain(len.saturating_sub(24)..len));
    idxs.sort_unstable();
    idxs.dedup();
    idxs
}

#[test]
fn container_over_real_state_fails_closed_on_any_corruption() {
    let (_, file) = warm_container(PredictorKind::Mascot);
    let bytes = file.encode();
    assert_eq!(SnapshotFile::decode(&bytes).unwrap(), file, "clean roundtrip");

    // Wrong magic and wrong version are named errors, not generic ones.
    let mut magic = bytes.clone();
    magic[0] ^= 0x01;
    assert_eq!(SnapshotFile::decode(&magic), Err(SnapError::BadMagic));
    let mut version = bytes.clone();
    version[4] = 0x7f;
    assert_eq!(
        SnapshotFile::decode(&version),
        Err(SnapError::BadVersion(0x7f))
    );

    // A flipped checksum byte reports the mismatch.
    let mut checksum = bytes.clone();
    *checksum.last_mut().expect("non-empty") ^= 0xff;
    assert!(matches!(
        SnapshotFile::decode(&checksum),
        Err(SnapError::BadChecksum { .. })
    ));

    // Torn write: every truncation point fails.
    for cut in sample_indices(bytes.len()) {
        assert!(
            SnapshotFile::decode(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must fail",
            bytes.len()
        );
    }

    // Bit rot: every sampled single-byte flip fails (the checksum covers
    // all content bytes, and flips in the trailer break the comparison).
    for i in sample_indices(bytes.len()) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x20;
        assert!(
            SnapshotFile::decode(&corrupt).is_err(),
            "byte flip at {i}/{} must fail",
            bytes.len()
        );
    }
}

#[test]
fn predictor_payload_truncation_fails_closed_for_every_kind() {
    for kind in PredictorKind::ALL {
        let preds = warm_cluster(kind, 1, 400, 0xFACE);
        let bytes = preds[0].snapshot_bytes();
        AnyPredictor::from_snapshot_bytes(&bytes).expect("clean payload decodes");
        for cut in sample_indices(bytes.len()) {
            if cut == bytes.len() {
                continue;
            }
            assert!(
                AnyPredictor::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "{}: truncation to {cut}/{} bytes must fail",
                kind.label(),
                bytes.len()
            );
        }
        // Trailing garbage is a lie about the payload length.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(
            AnyPredictor::from_snapshot_bytes(&padded).is_err(),
            "{}: trailing byte must fail",
            kind.label()
        );
    }
}

#[test]
fn mixed_kind_shard_payloads_are_rejected() {
    let mascot = warm_cluster(PredictorKind::Mascot, 1, 200, 1).remove(0);
    let phast = warm_cluster(PredictorKind::Phast, 1, 200, 1).remove(0);
    let shards = vec![mascot.snapshot_bytes(), phast.snapshot_bytes()];
    // Rejected on the exact-count path (no merge would have caught it)...
    let err = predictors_from_snapshot(&shards, 2).expect_err("mixed kinds");
    assert!(err.contains("different predictor kind"), "got: {err}");
    // ...and on the merge path.
    assert!(predictors_from_snapshot(&shards, 1).is_err());
}

#[test]
fn resharding_matches_the_union_merge_on_every_target() {
    let (originals, file) = warm_container(PredictorKind::Mascot);
    let pcs = || (0..NUM_PCS).map(|i| PC_BASE + i * 4);

    // The resharding contract (DESIGN.md §10): an N→M reshard serves
    // exactly like the union merge of the N shards. Per-PC equality with
    // the *pre-merge owner* is deliberately not promised — when two
    // shards' entries overflow one associative set, the merge keeps the
    // higher-usefulness entry, which can change that PC's answer.
    let mut union = AnyPredictor::from_snapshot_bytes(&file.shards[0]).expect("shard 0");
    for payload in &file.shards[1..] {
        let other = AnyPredictor::from_snapshot_bytes(payload).expect("shard payload");
        union.merge_from(&other).expect("homogeneous shards merge");
    }
    let expected = probe(&union, pcs());

    for target in [1usize, 2, 5] {
        let restored =
            predictors_from_snapshot(&file.shards, target).expect("clean snapshot reshards");
        assert_eq!(restored.len(), target);
        for (shard, pred) in restored.iter().enumerate() {
            assert_eq!(
                probe(pred, pcs()),
                expected,
                "target shard {shard}/{target} diverged from the union"
            );
            assert_eq!(pred.entry_count(), union.entry_count());
        }
    }

    // Matching counts skip the merge and transfer bit-exactly.
    let exact = predictors_from_snapshot(&file.shards, 3).expect("exact transfer");
    for (restored, original) in exact.iter().zip(&originals) {
        assert_eq!(restored.snapshot_bytes(), original.snapshot_bytes());
        assert_eq!(restored.entry_count(), original.entry_count());
    }
}
