//! Regression tests over committed shrunken repro traces.
//!
//! Each `.mtrc` under `tests/repros/` was produced by the audit shrinker
//! (`audit-soak`) from a 20 000-uop soak failure with an injected engine
//! fault, then delta-debugged to ~a dozen micro-ops. They pin two things:
//!
//! 1. the *engine* stays clean on the exact shape that once broke it
//!    (or would break it under the named fault), and
//! 2. the *auditor* keeps catching that bug class — if a refactor ever
//!    silences the check, the injected-fault replay here fails first.

use std::path::PathBuf;

use mascot_audit::{renormalize, run_audited};
use mascot_predictors::PredictorKind;
use mascot_sim::{codec, CoreConfig, Fault, Trace};

fn load_repro(name: &str) -> Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/repros")
        .join(name);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    codec::decode(&bytes).unwrap_or_else(|e| panic!("decode {}: {e:?}", path.display()))
}

const FAULT_REPROS: [&str; 2] = [
    "repro-wrf-nosq-skip-violation-purge.mtrc",
    "repro-cactuBSSN-nosq-skip-violation-purge.mtrc",
];

/// Every committed repro is a well-formed trace whose dependence
/// annotations match an independent re-derivation (the shrinker's own
/// invariant — a drifting codec or renormalizer shows up here).
#[test]
fn committed_repros_are_valid_and_normal() {
    for name in FAULT_REPROS {
        let trace = load_repro(name);
        trace.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(trace.len() < 100, "{name}: shrinker output grew to {} uops", trace.len());
        let renorm = renormalize(&trace);
        assert_eq!(trace.uops, renorm.uops, "{name}");
    }
}

/// The un-faulted engine passes the full cycle audit on each repro — these
/// shapes are exactly the ones that expose purge bookkeeping, so any
/// regression in squash handling trips here with a ~12-uop witness.
#[test]
fn engine_is_clean_on_repro_shapes() {
    let cfg = CoreConfig::golden_cove();
    for name in FAULT_REPROS {
        let trace = load_repro(name);
        for kind in [PredictorKind::Mascot, PredictorKind::NoSq, PredictorKind::StoreSets] {
            run_audited(&trace, &cfg, kind, None)
                .unwrap_or_else(|e| panic!("{name} under {kind:?}: {e}"));
        }
    }
}

/// With the fault the repros were shrunk against re-injected, the auditor
/// must still catch it — this guards the detector, not the engine.
#[test]
fn auditor_still_catches_the_injected_fault() {
    let cfg = CoreConfig::golden_cove();
    for name in FAULT_REPROS {
        let trace = load_repro(name);
        let err = mascot_audit::runner::quiet_panics(|| {
            run_audited(
                &trace,
                &cfg,
                PredictorKind::NoSq,
                Some(Fault::SkipViolationPurge),
            )
        })
        .expect_err("fault must surface");
        assert!(
            err.message.contains("audit violation"),
            "{name}: unexpected failure: {}",
            err.message
        );
    }
}
