//! Robustness of the trace codec against corrupt input.
//!
//! Decoding is exposed to attacker-controlled bytes once traces travel over
//! the wire (`mascotd --replay`, shipped trace files), so `decode` must fail
//! with a [`CodecError`] — never panic, and never feed an unvalidated length
//! into `Vec::with_capacity` — for *any* byte string. This test mutates a
//! valid encoded trace thousands of ways (bit flips, truncations, splices,
//! and targeted length-field attacks) and decodes every mutant.

use mascot_sim::codec::{decode, encode};
use mascot_workloads::spec;

/// SplitMix64: tiny deterministic generator for mutation positions/values.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn valid_buffer() -> Vec<u8> {
    let profile = spec::profile("perlbench2").expect("known benchmark");
    let trace = mascot_workloads::generate(&profile, 7, 2_000);
    encode(&trace)
}

/// Byte-level mutations: every decode must return, and a changed buffer must
/// either decode to *something* (benign mutation, e.g. a pc bit) or produce
/// a `CodecError` — reaching this assertion at all proves no panic/abort.
#[test]
fn mutated_buffers_never_panic() {
    let base = valid_buffer();
    let mut rng = Rng(0x5eed);
    for round in 0..4_000 {
        let mut buf = base.clone();
        // 1..=4 random single-byte mutations.
        for _ in 0..=rng.below(3) {
            let pos = rng.below(buf.len());
            buf[pos] = rng.next() as u8;
        }
        // Every third round also truncates; every fifth splices a chunk.
        if round % 3 == 0 {
            buf.truncate(rng.below(buf.len() + 1));
        }
        if round % 5 == 0 && !buf.is_empty() {
            let at = rng.below(buf.len());
            let extra = (rng.next() % 16) as usize;
            buf.splice(at..at, std::iter::repeat_n(rng.next() as u8, extra));
        }
        // Must not panic; the Result itself is allowed to be either.
        let _ = decode(&buf);
    }
}

/// Targeted attack on the uop-count field: a huge claimed count with a tiny
/// payload must be rejected before any allocation is attempted.
#[test]
fn inflated_count_is_rejected_not_allocated() {
    let base = valid_buffer();
    // Layout: magic(4) + version(1) + name_len(2) + name + count(8).
    let name_len = u16::from_le_bytes([base[5], base[6]]) as usize;
    let count_at = 7 + name_len;
    for claimed in [u64::MAX, u64::MAX / 13, 1 << 60, 1 << 32, base.len() as u64] {
        let mut buf = base.clone();
        buf[count_at..count_at + 8].copy_from_slice(&claimed.to_le_bytes());
        assert!(
            decode(&buf).is_err(),
            "claimed count {claimed} must be rejected"
        );
    }
}

/// Targeted attack on the name-length field: claiming a name longer than the
/// buffer must fail cleanly.
#[test]
fn inflated_name_length_is_rejected() {
    let base = valid_buffer();
    let mut buf = base.clone();
    buf[5..7].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(decode(&buf).is_err());
}

/// Exhaustive single-byte corruption over a small trace: cheap enough to
/// cover *every* position × a few values, catching field-specific gaps the
/// random pass might miss.
#[test]
fn exhaustive_single_byte_corruption_on_small_trace() {
    let profile = spec::profile("exchange2").expect("known benchmark");
    let trace = mascot_workloads::generate(&profile, 11, 64);
    let base = encode(&trace);
    for pos in 0..base.len() {
        for val in [0x00, 0x01, 0x7f, 0xff] {
            if base[pos] == val {
                continue;
            }
            let mut buf = base.clone();
            buf[pos] = val;
            let _ = decode(&buf); // must not panic
        }
    }
}
