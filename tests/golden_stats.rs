//! Golden-stats snapshot: the cycle-level simulator's behaviour is pinned
//! bit-exactly. Hot-path rewrites (event wheel, O(1) ROB indexing, scratch
//! buffers, hashers) are mechanical-performance changes and must not alter
//! a single counter; any intentional model change must update these values
//! in the same commit, with an explanation.
//!
//! Regenerate with:
//! `cargo test --release --test golden_stats -- --ignored print_golden --nocapture`

use mascot_bench::{run_one, run_trace, PredictorKind};
use mascot_sim::{CoreConfig, SimStats, TenantCounters};
use mascot_workloads::adversarial::{compose, AttackKind, TENANT_BOUNDARY};
use mascot_workloads::spec;

const GOLDEN_UOPS: usize = 20_000;
const GOLDEN_SEED: u64 = 2025;
const MISTRAIN_UOPS: usize = 12_000;

fn matrix() -> Vec<(&'static str, PredictorKind)> {
    let profiles = ["perlbench2", "exchange2"];
    let kinds = [
        PredictorKind::Mascot,
        PredictorKind::NoSq,
        PredictorKind::StoreSets,
    ];
    profiles
        .iter()
        .flat_map(|&p| kinds.iter().map(move |&k| (p, k)))
        .collect()
}

fn run(profile: &str, kind: PredictorKind) -> SimStats {
    let profile = spec::profile(profile).expect("known profile");
    run_one(
        &profile,
        kind,
        &CoreConfig::golden_cove(),
        GOLDEN_UOPS,
        GOLDEN_SEED,
    )
    .stats
}

/// Prints the current stats as Rust literals for updating `golden()`.
#[test]
#[ignore = "generator for the golden values below"]
fn print_golden() {
    for (profile, kind) in matrix() {
        let stats = run(profile, kind);
        println!("// ({profile:?}, PredictorKind::{kind:?})");
        println!("{stats:#?},");
    }
}

#[test]
fn stats_match_golden_snapshot() {
    let golden = golden();
    assert_eq!(golden.len(), matrix().len());
    for ((profile, kind), expected) in matrix().into_iter().zip(golden) {
        let got = run(profile, kind);
        assert_eq!(
            got, expected,
            "SimStats drifted for ({profile}, {kind:?}) — if the simulator \
             model intentionally changed, regenerate with print_golden"
        );
    }
}

fn mistrain_matrix() -> Vec<(AttackKind, PredictorKind)> {
    let kinds = [PredictorKind::Mascot, PredictorKind::RandomizedMascot];
    AttackKind::ALL
        .iter()
        .flat_map(|&a| kinds.iter().map(move |&k| (a, k)))
        .collect()
}

fn run_mistrain(attack: AttackKind, kind: PredictorKind) -> SimStats {
    let trace = compose(attack, GOLDEN_SEED, MISTRAIN_UOPS);
    run_trace(
        &trace,
        kind,
        &CoreConfig::golden_cove(),
        Some(TENANT_BOUNDARY),
    )
    .stats
}

/// Prints the current mistraining pins for updating `mistrain_golden()`.
#[test]
#[ignore = "generator for the mistraining golden values below"]
fn print_mistrain_golden() {
    for (attack, kind) in mistrain_matrix() {
        let s = run_mistrain(attack, kind);
        println!("// ({attack}, PredictorKind::{kind:?})");
        println!(
            "({}, {}, {}, {:?}, {:?}),",
            s.cycles, s.mem_order_squashes, s.smb_squashes, s.victim, s.attacker
        );
    }
}

/// Bit-exact pins of the adversarial runs: cycles, squash counts and the
/// full per-tenant misprediction split for every attack × defender, plus
/// the taxonomy identities on each run. Anything that changes attack
/// dynamics (trace shape, hasher, training policy, tenant attribution)
/// must regenerate these in the same commit, with an explanation.
#[test]
fn mistrain_stats_match_golden() {
    let golden = mistrain_golden();
    assert_eq!(golden.len(), mistrain_matrix().len());
    for ((attack, kind), expected) in mistrain_matrix().into_iter().zip(golden.iter().copied()) {
        let s = run_mistrain(attack, kind);
        s.check_identities()
            .unwrap_or_else(|e| panic!("({attack}, {kind:?}): {e}"));
        let got = (
            s.cycles,
            s.mem_order_squashes,
            s.smb_squashes,
            s.victim,
            s.attacker,
        );
        assert_eq!(
            got, expected,
            "mistraining stats drifted for ({attack}, {kind:?}) — if the \
             attack traces or the model intentionally changed, regenerate \
             with print_mistrain_golden"
        );
    }
    // Invariants the pins must keep encoding: the alias attack really
    // poisons baseline mascot, and the randomized defense really blanks it.
    let baseline = &golden[0].3; // (Alias, Mascot) victim
    assert!(baseline.false_bypasses > 0, "alias attack lost its bypasses");
    assert!(
        baseline.false_dependencies > 0,
        "alias attack lost its false dependencies"
    );
    let defended = &golden[1].3; // (Alias, RandomizedMascot) victim
    assert_eq!(
        defended.false_bypasses + defended.false_dependencies + defended.missed_dependencies,
        0,
        "randomized defense must blank the alias attack"
    );
}

#[rustfmt::skip]
fn mistrain_golden() -> Vec<(u64, u64, u64, TenantCounters, TenantCounters)> {
    vec![
        // (mistrain_alias, PredictorKind::Mascot)
        (18667, 806, 238, TenantCounters { loads: 572, missed_dependencies: 0, false_dependencies: 386, false_bypasses: 238 }, TenantCounters { loads: 3432, missed_dependencies: 990, false_dependencies: 0, false_bypasses: 0 }),
        // (mistrain_alias, PredictorKind::RandomizedMascot)
        (4449, 2, 0, TenantCounters { loads: 572, missed_dependencies: 0, false_dependencies: 0, false_bypasses: 0 }, TenantCounters { loads: 3432, missed_dependencies: 1, false_dependencies: 0, false_bypasses: 0 }),
        // (mistrain_flood, PredictorKind::Mascot)
        (16981, 516, 0, TenantCounters { loads: 752, missed_dependencies: 4, false_dependencies: 0, false_bypasses: 0 }, TenantCounters { loads: 3008, missed_dependencies: 512, false_dependencies: 0, false_bypasses: 0 }),
        // (mistrain_flood, PredictorKind::RandomizedMascot)
        (16981, 516, 0, TenantCounters { loads: 752, missed_dependencies: 4, false_dependencies: 0, false_bypasses: 0 }, TenantCounters { loads: 3008, missed_dependencies: 512, false_dependencies: 0, false_bypasses: 0 }),
        // (mistrain_interleave, PredictorKind::Mascot)
        (4945, 1, 3, TenantCounters { loads: 1262, missed_dependencies: 0, false_dependencies: 21, false_bypasses: 3 }, TenantCounters { loads: 1262, missed_dependencies: 16, false_dependencies: 1, false_bypasses: 0 }),
        // (mistrain_interleave, PredictorKind::RandomizedMascot)
        (5005, 2, 0, TenantCounters { loads: 1262, missed_dependencies: 1, false_dependencies: 1, false_bypasses: 0 }, TenantCounters { loads: 1262, missed_dependencies: 3, false_dependencies: 1, false_bypasses: 0 }),
    ]
}

#[rustfmt::skip]
fn golden() -> Vec<SimStats> {
    vec![
        SimStats {
            cycles: 26270,
            committed_uops: 20104,
            committed_loads: 3528,
            committed_stores: 2555,
            committed_branches: 3381,
            pred_no_dep: 1601,
            pred_mdp: 463,
            pred_smb: 1464,
            missed_dependencies: 42,
            false_dependencies: 20,
            wrong_store: 32,
            smb_errors: 0,
            correct_mdp: 417,
            correct_smb: 1458,
            correct_no_dep: 1559,
            mem_order_squashes: 6,
            smb_squashes: 6,
            branch_mispredicts: 741,
            indirect_mispredicts: 0,
            loads_bypassed: 1458,
            loads_forwarded: 491,
            loads_from_cache: 1579,
            class_direct_bypass: 1541,
            class_no_offset: 144,
            class_offset: 0,
            class_mdp_only: 264,
            dependent_wait_cycles: 22612,
            dependent_wait_count: 1994,
            stall_frontend: 22352,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 96,
            l1d_misses: 1805,
            l2_misses: 1858,
            l3_misses: 1858,
            ..SimStats::default()
        },
        // ("perlbench2", PredictorKind::NoSq)
        SimStats {
            cycles: 26589,
            committed_uops: 20104,
            committed_loads: 3528,
            committed_stores: 2555,
            committed_branches: 3381,
            pred_no_dep: 1537,
            pred_mdp: 1991,
            pred_smb: 0,
            missed_dependencies: 42,
            false_dependencies: 84,
            wrong_store: 271,
            smb_errors: 0,
            correct_mdp: 1636,
            correct_smb: 0,
            correct_no_dep: 1495,
            mem_order_squashes: 6,
            smb_squashes: 0,
            branch_mispredicts: 726,
            indirect_mispredicts: 0,
            loads_bypassed: 0,
            loads_forwarded: 1949,
            loads_from_cache: 1579,
            class_direct_bypass: 1541,
            class_no_offset: 144,
            class_offset: 0,
            class_mdp_only: 264,
            dependent_wait_cycles: 35913,
            dependent_wait_count: 1998,
            stall_frontend: 22753,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 96,
            l1d_misses: 1804,
            l2_misses: 1858,
            l3_misses: 1858,
            ..SimStats::default()
        },
        // ("perlbench2", PredictorKind::StoreSets)
        SimStats {
            cycles: 26567,
            committed_uops: 20104,
            committed_loads: 3528,
            committed_stores: 2555,
            committed_branches: 3381,
            pred_no_dep: 1538,
            pred_mdp: 1990,
            pred_smb: 0,
            missed_dependencies: 42,
            false_dependencies: 83,
            wrong_store: 0,
            smb_errors: 0,
            correct_mdp: 1907,
            correct_smb: 0,
            correct_no_dep: 1496,
            mem_order_squashes: 6,
            smb_squashes: 0,
            branch_mispredicts: 726,
            indirect_mispredicts: 0,
            loads_bypassed: 0,
            loads_forwarded: 1949,
            loads_from_cache: 1579,
            class_direct_bypass: 1541,
            class_no_offset: 144,
            class_offset: 0,
            class_mdp_only: 264,
            dependent_wait_cycles: 35828,
            dependent_wait_count: 1998,
            stall_frontend: 22731,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 96,
            l1d_misses: 1804,
            l2_misses: 1858,
            l3_misses: 1858,
            ..SimStats::default()
        },
        // ("exchange2", PredictorKind::Mascot)
        SimStats {
            cycles: 9557,
            committed_uops: 20023,
            committed_loads: 3185,
            committed_stores: 684,
            committed_branches: 3185,
            pred_no_dep: 2734,
            pred_mdp: 451,
            pred_smb: 0,
            missed_dependencies: 2,
            false_dependencies: 0,
            wrong_store: 3,
            smb_errors: 0,
            correct_mdp: 448,
            correct_smb: 0,
            correct_no_dep: 2732,
            mem_order_squashes: 2,
            smb_squashes: 0,
            branch_mispredicts: 309,
            indirect_mispredicts: 0,
            loads_bypassed: 0,
            loads_forwarded: 453,
            loads_from_cache: 2732,
            class_direct_bypass: 0,
            class_no_offset: 0,
            class_offset: 0,
            class_mdp_only: 453,
            dependent_wait_cycles: 4530,
            dependent_wait_count: 455,
            stall_frontend: 6023,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 20,
            l1d_misses: 42,
            l2_misses: 284,
            l3_misses: 284,
            ..SimStats::default()
        },
        // ("exchange2", PredictorKind::NoSq)
        SimStats {
            cycles: 9605,
            committed_uops: 20023,
            committed_loads: 3185,
            committed_stores: 684,
            committed_branches: 3185,
            pred_no_dep: 2734,
            pred_mdp: 451,
            pred_smb: 0,
            missed_dependencies: 2,
            false_dependencies: 0,
            wrong_store: 12,
            smb_errors: 0,
            correct_mdp: 439,
            correct_smb: 0,
            correct_no_dep: 2732,
            mem_order_squashes: 5,
            smb_squashes: 0,
            branch_mispredicts: 309,
            indirect_mispredicts: 0,
            loads_bypassed: 0,
            loads_forwarded: 453,
            loads_from_cache: 2732,
            class_direct_bypass: 0,
            class_no_offset: 0,
            class_offset: 0,
            class_mdp_only: 453,
            dependent_wait_cycles: 4526,
            dependent_wait_count: 455,
            stall_frontend: 6059,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 20,
            l1d_misses: 42,
            l2_misses: 284,
            l3_misses: 284,
            ..SimStats::default()
        },
        // ("exchange2", PredictorKind::StoreSets)
        SimStats {
            cycles: 9557,
            committed_uops: 20023,
            committed_loads: 3185,
            committed_stores: 684,
            committed_branches: 3185,
            pred_no_dep: 2734,
            pred_mdp: 451,
            pred_smb: 0,
            missed_dependencies: 2,
            false_dependencies: 0,
            wrong_store: 0,
            smb_errors: 0,
            correct_mdp: 451,
            correct_smb: 0,
            correct_no_dep: 2732,
            mem_order_squashes: 2,
            smb_squashes: 0,
            branch_mispredicts: 309,
            indirect_mispredicts: 0,
            loads_bypassed: 0,
            loads_forwarded: 453,
            loads_from_cache: 2732,
            class_direct_bypass: 0,
            class_no_offset: 0,
            class_offset: 0,
            class_mdp_only: 453,
            dependent_wait_cycles: 4527,
            dependent_wait_count: 455,
            stall_frontend: 6023,
            stall_rob: 0,
            stall_iq: 0,
            stall_lq: 0,
            stall_sb: 0,
            l1i_misses: 20,
            l1d_misses: 42,
            l2_misses: 284,
            l3_misses: 284,
            ..SimStats::default()
        },
    ]
}
