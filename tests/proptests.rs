//! Randomised property tests over the full stack: arbitrary (but
//! well-formed) traces and outcome streams must never break the simulator
//! or the predictors, and core invariants must hold for all inputs.
//!
//! These were originally written against the `proptest` crate; the build
//! environment is offline, so they now drive the same properties from a
//! seeded deterministic RNG (fixed case counts, reproducible failures — the
//! failing seed is part of the assertion message).

use mascot::{
    BypassClass, LoadOutcome, Mascot, MascotConfig, MemDepPredictor, MemDepPrediction,
    ObservedDependence, StoreDistance,
};
use mascot_predictors::{NoSq, Phast, StoreSets};
use mascot_sim::{simulate, CoreConfig, Trace};
use mascot_workloads::{generate, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform integer in `[0, bound)` from the test RNG.
fn below(rng: &mut StdRng, bound: u64) -> u64 {
    (rng.random::<f64>() * bound as f64) as u64 % bound
}

/// A random well-formed micro-op stream: stores and loads over a small slot
/// space (creating genuine aliasing), branches, and ALU ops.
fn arb_trace(rng: &mut StdRng, max_len: usize) -> Trace {
    let len = 1 + below(rng, max_len as u64 - 1) as usize;
    let mut b = mascot_workloads::TraceBuilder::new();
    for i in 0..len {
        let kind = below(rng, 4) as u8;
        let slot = below(rng, 12);
        let reg = below(rng, 16) as u8;
        let taken = rng.random::<bool>();
        let pc = 0x1000 + (i as u64 % 97) * 4;
        let addr = 0x10_0000 + slot * 8;
        match kind {
            0 => b.alu(
                pc,
                [Some(reg), None],
                Some(reg.wrapping_add(1) % 16),
                1 + (slot as u8 % 3),
            ),
            1 => b.store(pc, addr, 8, reg),
            2 => b.load(pc, addr, 8, reg, None),
            _ => b.branch(pc, taken, None),
        }
    }
    b.build("prop")
}

/// Any well-formed trace commits fully under any predictor, and the
/// census counters stay consistent.
#[test]
fn simulator_commits_every_wellformed_trace() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xA11CE + case);
        let trace = arb_trace(&mut rng, 400);
        trace
            .validate()
            .expect("builder produces consistent ground truth");
        let core = CoreConfig::golden_cove();
        let mut p = Mascot::new(MascotConfig::default()).unwrap();
        let stats = simulate(&trace, &core, &mut p);
        assert_eq!(stats.committed_uops, trace.len() as u64, "case {case}");
        assert_eq!(stats.committed_loads, trace.num_loads() as u64, "case {case}");
        assert_eq!(stats.committed_stores, trace.num_stores() as u64, "case {case}");
        assert_eq!(
            stats.committed_branches,
            trace.num_branches() as u64,
            "case {case}"
        );
        // Every committed load is classified exactly once.
        let classified = stats.correct_no_dep
            + stats.correct_mdp
            + stats.correct_smb
            + stats.missed_dependencies
            + stats.false_dependencies
            + stats.wrong_store
            + stats.smb_errors;
        assert_eq!(classified, stats.committed_loads, "case {case}");
        // Prediction census covers every load too.
        assert_eq!(
            stats.pred_no_dep + stats.pred_mdp + stats.pred_smb,
            stats.committed_loads,
            "case {case}"
        );
        assert_eq!(
            stats.loads_bypassed + stats.loads_forwarded + stats.loads_from_cache,
            stats.committed_loads,
            "case {case}"
        );
    }
}

/// Arbitrary (prediction, outcome) streams never panic any predictor,
/// and storage cost is invariant under training.
#[test]
fn predictors_survive_arbitrary_training() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xB0B + case);
        let steps = 1 + below(&mut rng, 299) as usize;
        let mut mascot = Mascot::new(MascotConfig::default()).unwrap();
        let mut phast = Phast::default();
        let mut nosq = NoSq::default();
        let mut sets = StoreSets::default();
        let bits = (
            mascot.storage_bits(),
            phast.storage_bits(),
            nosq.storage_bits(),
            sets.storage_bits(),
        );
        for _ in 0..steps {
            let pc = 0x4000 + below(&mut rng, 64) * 4;
            let outcome = if rng.random::<bool>() {
                LoadOutcome::independent()
            } else {
                let class = match below(&mut rng, 4) {
                    0 => BypassClass::DirectBypass,
                    1 => BypassClass::NoOffset,
                    2 => BypassClass::Offset,
                    _ => BypassClass::MdpOnly,
                };
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + below(&mut rng, 99) as u32).unwrap(),
                    class,
                    store_pc: 0x9000 + below(&mut rng, 32) * 4,
                    branches_between: below(&mut rng, 40) as u32,
                })
            };
            let (p1, m1) = mascot.predict(pc, 1000, None);
            mascot.train(pc, m1, p1, &outcome);
            let (p2, m2) = phast.predict(pc, 1000, None);
            phast.train(pc, m2, p2, &outcome);
            let (p3, m3) = nosq.predict(pc, 1000, None);
            nosq.train(pc, m3, p3, &outcome);
            let (p4, m4) = sets.predict(pc, 1000, None);
            sets.train(pc, m4, p4, &outcome);
        }
        assert_eq!(bits.0, mascot.storage_bits(), "case {case}");
        assert_eq!(bits.1, phast.storage_bits(), "case {case}");
        assert_eq!(bits.2, nosq.storage_bits(), "case {case}");
        assert_eq!(bits.3, sets.storage_bits(), "case {case}");
    }
}

/// MASCOT's prediction is always internally consistent: bypass implies
/// dependence, and non-dependence carries no distance.
#[test]
fn mascot_prediction_invariants() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE + case);
        let n = 1 + below(&mut rng, 199) as usize;
        let dep_every = 1 + below(&mut rng, 4);
        let mut p = Mascot::new(MascotConfig::default()).unwrap();
        for i in 0..n {
            let pc = 0x100 + below(&mut rng, 32) * 4;
            let (pred, meta) = p.predict(pc, i as u64, None);
            match pred {
                MemDepPrediction::NoDependence => assert!(pred.distance().is_none()),
                MemDepPrediction::Dependence { .. } => assert!(!pred.is_bypass()),
                MemDepPrediction::Bypass { .. } => assert!(pred.is_dependence()),
            }
            let outcome = if (i as u64).is_multiple_of(dep_every) {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (i as u32 % 7)).unwrap(),
                    class: BypassClass::DirectBypass,
                    store_pc: 0x900,
                    branches_between: 0,
                })
            } else {
                LoadOutcome::independent()
            };
            p.train(pc, meta, pred, &outcome);
        }
    }
}

/// Workload generation is total over the valid profile space and always
/// yields consistent ground truth.
#[test]
fn generator_is_total_over_profiles() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD00D + case);
        let profile = WorkloadProfile {
            hammocks: below(&mut rng, 4) as usize,
            spill_fills: below(&mut rng, 4) as usize,
            stream_loads: 1 + below(&mut rng, 5) as usize,
            chase_loads: below(&mut rng, 3) as usize,
            noise_branches: below(&mut rng, 4) as usize,
            code_contexts: 1 + below(&mut rng, 5) as usize,
            store_chase: below(&mut rng, 4) as usize,
            ..WorkloadProfile::base("prop")
        };
        if profile.validate().is_err() {
            continue;
        }
        let trace = generate(&profile, below(&mut rng, 1000), 3_000);
        assert!(trace.len() >= 3_000, "case {case}");
        trace.validate().unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// The binary trace codec is lossless over arbitrary generated workloads.
#[test]
fn codec_roundtrips_generated_traces() {
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DEC + case);
        let profile = WorkloadProfile {
            hammocks: below(&mut rng, 3) as usize,
            store_chase: below(&mut rng, 3) as usize,
            ..WorkloadProfile::base("codec-prop")
        };
        let trace = generate(&profile, below(&mut rng, 500), 2_000);
        let bytes = mascot_sim::codec::encode(&trace);
        let back = mascot_sim::codec::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(trace.name, back.name, "case {case}");
        assert_eq!(trace.uops, back.uops, "case {case}");
    }
}

/// Single-byte corruption of an encoded trace never panics the decoder:
/// it either errors out or yields a (different but) well-formed trace.
#[test]
fn codec_survives_corruption() {
    let profile = WorkloadProfile::base("codec-corrupt");
    let trace = generate(&profile, 7, 500);
    let clean = mascot_sim::codec::encode(&trace);
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    for _ in 0..64 {
        let mut bytes = clean.clone();
        let pos = below(&mut rng, bytes.len() as u64) as usize;
        bytes[pos] = below(&mut rng, 256) as u8;
        let _ = mascot_sim::codec::decode(&bytes); // must not panic
    }
}
