//! Property-based tests over the full stack: arbitrary (but well-formed)
//! traces and outcome streams must never break the simulator or the
//! predictors, and core invariants must hold for all inputs.

use mascot::{
    BypassClass, LoadOutcome, Mascot, MascotConfig, MemDepPredictor, MemDepPrediction,
    ObservedDependence, StoreDistance,
};
use mascot_predictors::{NoSq, Phast, StoreSets};
use mascot_sim::{simulate, CoreConfig, Trace};
use mascot_workloads::{generate, WorkloadProfile};
use proptest::prelude::*;

/// A random well-formed micro-op stream: stores and loads over a small slot
/// space (creating genuine aliasing), branches, and ALU ops.
fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    let op = prop_oneof![
        // (kind selector, slot, reg, taken)
        (0u8..=3, 0u64..12, 0u8..16, any::<bool>()),
    ];
    proptest::collection::vec(op, 1..max_len).prop_map(|ops| {
        let mut b = mascot_workloads::TraceBuilder::new();
        for (i, (kind, slot, reg, taken)) in ops.into_iter().enumerate() {
            let pc = 0x1000 + (i as u64 % 97) * 4;
            let addr = 0x10_0000 + slot * 8;
            match kind {
                0 => b.alu(pc, [Some(reg), None], Some(reg.wrapping_add(1) % 16), 1 + (slot as u8 % 3)),
                1 => b.store(pc, addr, 8, reg),
                2 => b.load(pc, addr, 8, reg, None),
                _ => b.branch(pc, taken, None),
            }
        }
        b.build("prop")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed trace commits fully under any predictor, and the
    /// census counters stay consistent.
    #[test]
    fn simulator_commits_every_wellformed_trace(trace in arb_trace(400)) {
        prop_assume!(!trace.is_empty());
        trace.validate().expect("builder produces consistent ground truth");
        let core = CoreConfig::golden_cove();
        let mut p = Mascot::new(MascotConfig::default()).unwrap();
        let stats = simulate(&trace, &core, &mut p);
        prop_assert_eq!(stats.committed_uops, trace.len() as u64);
        prop_assert_eq!(stats.committed_loads, trace.num_loads() as u64);
        prop_assert_eq!(stats.committed_stores, trace.num_stores() as u64);
        prop_assert_eq!(stats.committed_branches, trace.num_branches() as u64);
        // Every committed load is classified exactly once.
        let classified = stats.correct_no_dep
            + stats.correct_mdp
            + stats.correct_smb
            + stats.missed_dependencies
            + stats.false_dependencies
            + stats.wrong_store
            + stats.smb_errors;
        prop_assert_eq!(classified, stats.committed_loads);
        // Prediction census covers every load too.
        prop_assert_eq!(
            stats.pred_no_dep + stats.pred_mdp + stats.pred_smb,
            stats.committed_loads
        );
        prop_assert_eq!(
            stats.loads_bypassed + stats.loads_forwarded + stats.loads_from_cache,
            stats.committed_loads
        );
    }

    /// Arbitrary (prediction, outcome) streams never panic any predictor,
    /// and storage cost is invariant under training.
    #[test]
    fn predictors_survive_arbitrary_training(
        steps in proptest::collection::vec(
            (0u64..64, proptest::option::of((1u32..100, 0u8..4, 0u64..32, 0u32..40))),
            1..300
        )
    ) {
        let mut mascot = Mascot::new(MascotConfig::default()).unwrap();
        let mut phast = Phast::default();
        let mut nosq = NoSq::default();
        let mut sets = StoreSets::default();
        let bits = (
            mascot.storage_bits(),
            phast.storage_bits(),
            nosq.storage_bits(),
            sets.storage_bits(),
        );
        for (pc_sel, dep) in steps {
            let pc = 0x4000 + pc_sel * 4;
            let outcome = match dep {
                None => LoadOutcome::independent(),
                Some((dist, class, store_sel, branches)) => {
                    let class = match class {
                        0 => BypassClass::DirectBypass,
                        1 => BypassClass::NoOffset,
                        2 => BypassClass::Offset,
                        _ => BypassClass::MdpOnly,
                    };
                    LoadOutcome::dependent(ObservedDependence {
                        distance: StoreDistance::new(dist).unwrap(),
                        class,
                        store_pc: 0x9000 + store_sel * 4,
                        branches_between: branches,
                    })
                }
            };
            let (p1, m1) = mascot.predict(pc, 1000, None);
            mascot.train(pc, m1, p1, &outcome);
            let (p2, m2) = phast.predict(pc, 1000, None);
            phast.train(pc, m2, p2, &outcome);
            let (p3, m3) = nosq.predict(pc, 1000, None);
            nosq.train(pc, m3, p3, &outcome);
            let (p4, m4) = sets.predict(pc, 1000, None);
            sets.train(pc, m4, p4, &outcome);
        }
        prop_assert_eq!(bits.0, mascot.storage_bits());
        prop_assert_eq!(bits.1, phast.storage_bits());
        prop_assert_eq!(bits.2, nosq.storage_bits());
        prop_assert_eq!(bits.3, sets.storage_bits());
    }

    /// MASCOT's prediction is always internally consistent: bypass implies
    /// dependence, and non-dependence carries no distance.
    #[test]
    fn mascot_prediction_invariants(
        pcs in proptest::collection::vec(0u64..32, 1..200),
        dep_every in 1u64..5
    ) {
        let mut p = Mascot::new(MascotConfig::default()).unwrap();
        for (i, pc_sel) in pcs.iter().enumerate() {
            let pc = 0x100 + pc_sel * 4;
            let (pred, meta) = p.predict(pc, i as u64, None);
            match pred {
                MemDepPrediction::NoDependence => prop_assert!(pred.distance().is_none()),
                MemDepPrediction::Dependence { .. } => prop_assert!(!pred.is_bypass()),
                MemDepPrediction::Bypass { .. } => prop_assert!(pred.is_dependence()),
            }
            let outcome = if (i as u64).is_multiple_of(dep_every) {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (i as u32 % 7)).unwrap(),
                    class: BypassClass::DirectBypass,
                    store_pc: 0x900,
                    branches_between: 0,
                })
            } else {
                LoadOutcome::independent()
            };
            p.train(pc, meta, pred, &outcome);
        }
    }

    /// Workload generation is total over the valid profile space and always
    /// yields consistent ground truth.
    #[test]
    fn generator_is_total_over_profiles(
        hammocks in 0usize..4,
        spills in 0usize..4,
        streams in 1usize..6,
        noise in 0usize..4,
        ctx in 1usize..6,
        chase in 0usize..3,
        chain in 0usize..4,
        seed in 0u64..1000,
    ) {
        let profile = WorkloadProfile {
            hammocks,
            spill_fills: spills,
            stream_loads: streams,
            chase_loads: chase,
            noise_branches: noise,
            code_contexts: ctx,
            store_chase: chain,
            ..WorkloadProfile::base("prop")
        };
        prop_assume!(profile.validate().is_ok());
        let trace = generate(&profile, seed, 3_000);
        prop_assert!(trace.len() >= 3_000);
        trace.validate().map_err(TestCaseError::fail)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The binary trace codec is lossless over arbitrary generated
    /// workloads.
    #[test]
    fn codec_roundtrips_generated_traces(
        seed in 0u64..500,
        hammocks in 0usize..3,
        chain in 0usize..3,
    ) {
        let profile = WorkloadProfile {
            hammocks,
            store_chase: chain,
            ..WorkloadProfile::base("codec-prop")
        };
        let trace = generate(&profile, seed, 2_000);
        let bytes = mascot_sim::codec::encode(&trace);
        let back = mascot_sim::codec::decode(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(trace.name, back.name);
        prop_assert_eq!(trace.uops, back.uops);
    }

    /// Single-byte corruption of an encoded trace never panics the decoder:
    /// it either errors out or yields a (different but) well-formed trace.
    #[test]
    fn codec_survives_corruption(pos_frac in 0.0f64..1.0, byte in 0u8..=255) {
        let profile = WorkloadProfile::base("codec-corrupt");
        let trace = generate(&profile, 7, 500);
        let mut bytes = mascot_sim::codec::encode(&trace);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = byte;
        let _ = mascot_sim::codec::decode(&bytes); // must not panic
    }
}
