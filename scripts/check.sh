#!/usr/bin/env bash
# Tier-1 gate plus the performance trajectories.
#
#   scripts/check.sh            # offline build + tests + perf checks
#   CARGO_FLAGS= scripts/check.sh   # allow network (e.g. first-time fetch)
#
# Fails if the build (warnings are errors) or any test fails, if the
# seeded audit soak (cycle-granular invariant checks, the batch-vs-scalar
# prediction differential over every registered predictor kind, and
# differential runs across every workload profile and the mistraining
# compositions) flags a violation, if the adversarial gate fails (the
# alias attack must measurably pollute baseline mascot while
# RandomizedMascot cuts attack success >= 10x at <= 5% benign IPC cost),
# if simulator throughput regresses against the committed
# BENCH_sim_throughput.json baseline (median of 3 passes; >10% aggregate
# or >12% for any single predictor's suite-wide number), if sampled
# simulation misses its gates against BENCH_sampling.json (>= 10x marginal
# trace-volume speedup with projected IPC within 8% of the full-trace
# reference, median of 3 passes), if the
# mascot-serve loopback smoke (real mascotd process + mascot-loadgen over
# TCP) loses requests, achieves zero QPS, or fails to drain on shutdown,
# or if the open-loop soak (1k concurrent connections against one mascotd)
# loses a request or blows its p999 latency SLO. Regenerate the baselines
# with `cargo run --release -p mascot-bench --bin throughput` and `cargo
# run --release -p mascot-serve --bin mascot-loadgen` on intentional perf
# changes, and commit the new files alongside them (BENCH_serve.json must
# carry the SLO schema fields: connections / latency_p999_us /
# slo_p999_us).

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS---offline}
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# Waits for a port file to appear (a daemon writes it once its listener is
# registered with the event loop's poller). Generous: a cold mascotd may
# replay a trace before opening for business, and the box may be loaded.
wait_ready() {
    for _ in $(seq 1 400); do
        [ -s "$1" ] && return 0
        sleep 0.05
    done
    echo "daemon behind $1 never became ready"
    return 1
}

echo "== tier-1: release build (warnings are errors) =="
# --workspace: the root is a real package, so a bare `cargo build` would
# compile only it and the smoke step below could run a *stale*
# target/release/mascotd (or none at all on a fresh clone).
cargo build --release ${CARGO_FLAGS} --workspace

echo "== tier-1: tests =="
cargo test -q ${CARGO_FLAGS}

echo "== audit soak (batch differential + seeded, all workload profiles) =="
# Starts with the batch-vs-scalar equivalence differential for every
# predictor kind in the registry, then the per-profile invariant soak.
# Fixed seed and a bounded per-profile budget keep this deterministic and
# inside a couple of minutes; failures shrink to .mtrc repros under
# target/audit-repros/ and print the replay command.
cargo run --release ${CARGO_FLAGS} -p mascot-audit --bin audit-soak -- \
    --seed 2025 --uops 20000

echo "== adversarial gate (mistraining suite vs randomized defense) =="
# Differential attack measurement (DESIGN.md §12): baseline mascot must
# show the alias attack working (induced pollution over the victim-alone
# run), RandomizedMascot must cut attack success >= 10x, and its benign
# IPC must stay within 5% of baseline mascot. Fixed seed, offline.
cargo run --release ${CARGO_FLAGS} -p mascot-bench --bin adversarial -- --check

echo "== throughput check (aggregate + per-predictor gates) =="
cargo run --release ${CARGO_FLAGS} -p mascot-bench --bin throughput -- --check

echo "== sampling check (cluster-and-project speedup + accuracy gates) =="
# Cluster-and-project sampled simulation (DESIGN.md §13): median of 3
# passes must deliver >= 10x marginal trace-volume speedup on 10x-longer
# traces with projected IPC within 8% of the full-trace reference, against
# the committed BENCH_sampling.json baseline. Regenerate on intentional
# changes with `cargo run --release -p mascot-bench --bin sampling`.
cargo run --release ${CARGO_FLAGS} -p mascot-bench --bin sampling -- --check

echo "== BENCH_sampling.json schema (speedup + error fields committed) =="
for field in speedup cold_speedup max_abs_ipc_err mean_abs_ipc_err; do
    grep -q "\"${field}\"" BENCH_sampling.json || {
        echo "BENCH_sampling.json is missing \"${field}\": re-baseline with"
        echo "  cargo run --release -p mascot-bench --bin sampling"
        exit 1
    }
done
echo "BENCH_sampling.json schema ok"

echo "== serve smoke (mascotd + loadgen over loopback) =="
PORT_FILE=$(mktemp)
rm -f "${PORT_FILE}"  # mascotd recreates it once the listener is ready
# --audit validates the replay trace (and its applied+stale accounting)
# before the server opens for business.
./target/release/mascotd --addr 127.0.0.1:0 --shards 4 \
    --replay mcf --audit --port-file "${PORT_FILE}" &
MASCOTD_PID=$!
trap 'kill ${MASCOTD_PID} 2>/dev/null || true; rm -f "${PORT_FILE}"' EXIT
wait_ready "${PORT_FILE}"
./target/release/mascot-loadgen --addr "$(cat "${PORT_FILE}")" --smoke
# The smoke's Shutdown request must let the server drain and exit cleanly.
wait "${MASCOTD_PID}"
trap - EXIT
rm -f "${PORT_FILE}"
echo "serve smoke ok (server drained and exited)"

echo "== serve soak (open-loop SLO gate, 1k concurrent connections) =="
# The loadgen opens 1024 multiplexed connections and offers a fixed
# open-loop frame rate; it fails on any lost request, an unclean drain, or
# a p999 latency (measured from the *scheduled* send time — no coordinated
# omission) above the SLO.
PORT_FILE=$(mktemp)
rm -f "${PORT_FILE}"
./target/release/mascotd --addr 127.0.0.1:0 --shards 2 \
    --port-file "${PORT_FILE}" &
MASCOTD_PID=$!
trap 'kill ${MASCOTD_PID} 2>/dev/null || true; rm -f "${PORT_FILE}"' EXIT
wait_ready "${PORT_FILE}"
./target/release/mascot-loadgen --addr "$(cat "${PORT_FILE}")" \
    --soak --threads 2 --batch 16 --slo-p999-us 250000
# The soak's Shutdown must drain the server cleanly too.
wait "${MASCOTD_PID}"
trap - EXIT
rm -f "${PORT_FILE}"
echo "serve soak ok (SLO held at 1k connections)"

echo "== BENCH_serve.json schema (SLO fields committed) =="
for field in connections latency_p999_us slo_p999_us; do
    grep -q "\"${field}\"" BENCH_serve.json || {
        echo "BENCH_serve.json is missing \"${field}\": re-baseline with"
        echo "  cargo run --release -p mascot-serve --bin mascot-loadgen"
        exit 1
    }
done
echo "BENCH_serve.json schema ok"

echo "== snapshot smoke (checkpoint, warm restart, identical fingerprints) =="
SNAP_DIR=$(mktemp -d)
PORT_FILE="${SNAP_DIR}/port"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "${SNAP_DIR}"' EXIT
# Generation 0: warm via replay, fingerprint, checkpoint on shutdown.
./target/release/mascotd --addr 127.0.0.1:0 --shards 4 --replay mcf \
    --snapshot-dir "${SNAP_DIR}" --port-file "${PORT_FILE}" &
MASCOTD_PID=$!
wait_ready "${PORT_FILE}"
./target/release/mascot-loadgen --addr "$(cat "${PORT_FILE}")" \
    --fingerprint-file "${SNAP_DIR}/fp.before" --shutdown
wait "${MASCOTD_PID}"
[ -s "${SNAP_DIR}/mascot.snap" ] || { echo "no snapshot checkpointed"; exit 1; }
# Generation 1: no replay — the state must come back from the snapshot.
rm -f "${PORT_FILE}"
./target/release/mascotd --addr 127.0.0.1:0 --shards 4 \
    --snapshot-dir "${SNAP_DIR}" --port-file "${PORT_FILE}" &
MASCOTD_PID=$!
wait_ready "${PORT_FILE}"
WARM_OUT=$(./target/release/mascot-loadgen --addr "$(cat "${PORT_FILE}")" \
    --fingerprint-file "${SNAP_DIR}/fp.after")
echo "${WARM_OUT}"
echo "${WARM_OUT}" | grep -q "restarts=1" \
    || { echo "warm restart not visible in Stats"; exit 1; }
if echo "${WARM_OUT}" | grep -q "restored_entries=0 "; then
    echo "warm restart restored nothing"; exit 1
fi
cmp "${SNAP_DIR}/fp.before" "${SNAP_DIR}/fp.after" \
    || { echo "predictions diverged across the restart"; exit 1; }
# The restored server must still serve real traffic losslessly.
./target/release/mascot-loadgen --addr "$(cat "${PORT_FILE}")" --smoke
wait "${MASCOTD_PID}"
trap - EXIT
rm -rf "${SNAP_DIR}"
echo "snapshot smoke ok (identical fingerprints across a warm restart)"

echo "== router smoke (3 nodes + replica, one node killed mid-run) =="
RUN_DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "${RUN_DIR}"' EXIT
NODE_PIDS=()
for i in 1 2 3 4; do
    ./target/release/mascotd --addr 127.0.0.1:0 --shards 2 \
        --port-file "${RUN_DIR}/node${i}.port" &
    NODE_PIDS+=($!)
done
for i in 1 2 3 4; do wait_ready "${RUN_DIR}/node${i}.port"; done
./target/release/mascot-router --addr 127.0.0.1:0 \
    --node "$(cat "${RUN_DIR}/node1.port")" \
    --node "$(cat "${RUN_DIR}/node2.port")" \
    --node "$(cat "${RUN_DIR}/node3.port")" \
    --replica "$(cat "${RUN_DIR}/node4.port")" \
    --health-interval-ms 100 --port-file "${RUN_DIR}/router.port" &
ROUTER_PID=$!
wait_ready "${RUN_DIR}/router.port"
# The smoke asserts zero lost requests even though a primary dies mid-run.
./target/release/mascot-loadgen --addr "$(cat "${RUN_DIR}/router.port")" \
    --smoke --duration-ms 2500 &
LOADGEN_PID=$!
sleep 0.8
kill -9 "${NODE_PIDS[1]}" 2>/dev/null || true
wait "${LOADGEN_PID}"
# The loadgen's Shutdown broadcast must stop the router and the survivors.
wait "${ROUTER_PID}"
for i in 0 2 3; do wait "${NODE_PIDS[$i]}" || true; done
trap - EXIT
rm -rf "${RUN_DIR}"
echo "router smoke ok (node killed mid-run, zero lost requests)"
