#!/usr/bin/env bash
# Tier-1 gate plus the simulator throughput trajectory.
#
#   scripts/check.sh            # offline build + tests + throughput check
#   CARGO_FLAGS= scripts/check.sh   # allow network (e.g. first-time fetch)
#
# Fails if the build or any test fails, or if aggregate simulator
# throughput regresses more than 10% against the committed
# BENCH_sim_throughput.json baseline (regenerate the baseline with
# `cargo run --release -p mascot-bench --bin throughput` on intentional
# perf changes, and commit the new file alongside them).

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS---offline}

echo "== tier-1: release build =="
cargo build --release ${CARGO_FLAGS}

echo "== tier-1: tests =="
cargo test -q ${CARGO_FLAGS}

echo "== throughput check =="
cargo run --release ${CARGO_FLAGS} -p mascot-bench --bin throughput -- --check
