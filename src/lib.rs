//! Workspace-root crate re-exporting the MASCOT reproduction stack for examples and integration tests.
pub use mascot;
pub use mascot_bench;
pub use mascot_predictors;
pub use mascot_sim;
pub use mascot_stats;
pub use mascot_workloads;
