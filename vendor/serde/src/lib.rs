//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access. This crate provides the
//! `Serialize`/`Deserialize` trait names and re-exports the no-op derive
//! macros so the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compile unchanged. No serialisation machinery is provided —
//! nothing in the workspace serialises at runtime; results are written as
//! plain text / hand-rolled JSON.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
