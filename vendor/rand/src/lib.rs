//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no registry access, so this crate provides the
//! small slice of the `rand` API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random` for `f64`/`u64`/`u32`/
//! `bool`. The generator is xoshiro256** seeded via SplitMix64 — fully
//! deterministic for a given seed, which is all the workload generator
//! requires. Streams differ from upstream `rand`'s ChaCha12-based `StdRng`,
//! so trace content is pinned by this implementation (golden-stats tests
//! cover it).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Random {
    /// Draws a uniform sample from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
