//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real derive macros
//! cannot be fetched. The codebase derives `Serialize`/`Deserialize` on its
//! public types for downstream consumers but never serialises anything
//! itself, so expanding the derives to nothing keeps every crate compiling
//! without changing behaviour. The `serde` helper attribute is declared so
//! field annotations like `#[serde(default)]` remain accepted.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
